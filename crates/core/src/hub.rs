//! The model hub: cross-context model reuse as a service.
//!
//! The paper's workflow (§III-A) is *recall → fine-tune → serve*: one
//! general model per (algorithm, objective) is pre-trained on historical
//! executions, persisted, recalled when a job of that algorithm shows up in
//! a new context, fine-tuned on the handful of observations available
//! there, and then queried for every candidate scale-out. The
//! collaborative-repository line of follow-up work shares those pretrained
//! checkpoints between many users. [`ModelHub`] is that layer:
//!
//! ```text
//!   ModelKey (algorithm ⊕ objective ⊕ config fingerprint)
//!        │ recall_or_pretrain(key, cfg, seed, samples)
//!        ▼
//!   in-memory registry ──miss──► on-disk checkpoints ──miss──► pretrain
//!   (Arc<ModelState>)            (<key-id>.blmy)              (once, then
//!        │                                                     persisted)
//!        │ fine_tuned_for(key, context, samples, ..)
//!        ▼
//!   fine-tuned descendant LRU (parent-checkpoint provenance)
//!        │
//!        ▼ Arc<ModelState> — lock-free concurrent predict
//! ```
//!
//! # Lifecycle
//!
//! 1. **Recall or pretrain.** [`ModelHub::recall_or_pretrain`] resolves a
//!    [`ModelKey`] against the in-memory registry, then the on-disk
//!    checkpoint directory, and only pre-trains (then persists) when both
//!    miss. A second hub instance pointed at the same directory — e.g.
//!    another process after a restart — recalls from disk without
//!    re-training, bit-identically.
//! 2. **Fine-tune.** [`ModelHub::fine_tuned_for`] derives a trainer handle
//!    from the recalled snapshot ([`Bellamy::from_state`]), fine-tunes it on
//!    the context's samples, and publishes the result into a bounded LRU of
//!    descendants keyed by (parent, context, samples, strategy, seed). Each
//!    descendant records its parent checkpoint key
//!    ([`ModelState::parent_key`]) — the provenance chain of the reuse.
//! 3. **Serve.** Every recall returns an `Arc<`[`ModelState`]`>`; prediction
//!    through it never touches a hub lock — any number of threads predict
//!    concurrently through their own [`crate::Predictor`] while the hub
//!    keeps training new descendants.
//!
//! Registry lookups take one mutex, held only for the map access. The
//! whole miss path — disk probe and pre-training alike — runs under a
//! *per-key* guard: concurrent requests for the same key serialize on that
//! key alone (one checkpoint load, one pre-training), while misses for
//! different keys probe the disk and pre-train fully in parallel — the
//! shape the evaluation harness fans out. Prediction traffic never touches
//! a hub lock at all; it runs on already-shared snapshots.

use crate::config::{BellamyConfig, FinetuneConfig, PretrainConfig};
use crate::faults::{self, Injected};
use crate::features::TrainingSample;
use crate::finetune::{fine_tune, ReuseStrategy};
use crate::model::Bellamy;
use crate::state::{ModelState, StateFromCheckpointError};
use crate::train::pretrain;
use bellamy_nn::{Checkpoint, CheckpointError};
use bellamy_telemetry::{self as telemetry, event_kind, Counter, Histogram, TelemetrySnapshot};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Content-addressed identity of a pretrained model: the algorithm it was
/// trained for, the training objective, and a fingerprint of the full
/// encoder/architecture configuration. Two keys collide exactly when a
/// checkpoint trained under one is servable under the other.
#[derive(Debug, Clone)]
pub struct ModelKey {
    algorithm: String,
    objective: String,
    config: BellamyConfig,
    fingerprint: u64,
    /// The sanitized registry id, cached at construction: hot hub paths
    /// (every recall, every batcher lookup) read it per call, and building
    /// it fresh allocated a `String` each time.
    id: String,
}

impl ModelKey {
    /// Builds a key for `(algorithm, objective)` under `config`.
    pub fn new(
        algorithm: impl Into<String>,
        objective: impl Into<String>,
        config: &BellamyConfig,
    ) -> Self {
        let algorithm = algorithm.into();
        let objective = objective.into();
        let fingerprint = identity_fingerprint(&algorithm, &objective, config);
        let id = format!(
            "{}--{}--{fingerprint:016x}",
            sanitize(&algorithm),
            sanitize(&objective),
        );
        Self {
            algorithm,
            objective,
            config: config.clone(),
            fingerprint,
            id,
        }
    }

    /// The algorithm name.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// The training objective label.
    pub fn objective(&self) -> &str {
        &self.objective
    }

    /// The architecture/encoder configuration the key addresses.
    pub fn config(&self) -> &BellamyConfig {
        &self.config
    }

    /// The stable registry id (also the checkpoint file stem): sanitized
    /// algorithm and objective plus the identity fingerprint in hex. The
    /// fingerprint covers the *raw* algorithm/objective strings, so two
    /// keys that differ only in characters the sanitizer flattens (e.g.
    /// `"K Means"` vs `"k-means"`) still get distinct ids — the id aliases
    /// exactly when the keys are equal. Cached at construction; this
    /// accessor never allocates.
    pub fn id(&self) -> &str {
        &self.id
    }
}

impl PartialEq for ModelKey {
    fn eq(&self, other: &Self) -> bool {
        self.algorithm == other.algorithm
            && self.objective == other.objective
            && self.fingerprint == other.fingerprint
    }
}

impl Eq for ModelKey {}

impl std::hash::Hash for ModelKey {
    fn hash<H: std::hash::Hasher>(&self, h: &mut H) {
        self.algorithm.hash(h);
        self.objective.hash(h);
        self.fingerprint.hash(h);
    }
}

impl std::fmt::Display for ModelKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id())
    }
}

/// FNV-1a over the full key identity: the raw algorithm and objective
/// strings (length-prefixed, so concatenation ambiguities cannot collide)
/// plus every configuration field that changes what a checkpoint *is*
/// (shapes, encoder width, property counts, target handling, init).
fn identity_fingerprint(algorithm: &str, objective: &str, c: &BellamyConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for s in [algorithm, objective] {
        mix(&(s.len() as u64).to_le_bytes());
        mix(s.as_bytes());
    }
    for dim in [
        c.property_dim,
        c.code_dim,
        c.hidden_dim,
        c.scale_out_hidden_dim,
        c.scale_out_dim,
        c.essential_props,
        c.optional_props,
    ] {
        mix(&(dim as u64).to_le_bytes());
    }
    mix(&[c.scale_targets as u8]);
    mix(&c.huber_delta.to_bits().to_le_bytes());
    mix(format!("{:?}", c.init).as_bytes());
    h
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// Errors surfaced by hub operations.
#[derive(Debug)]
pub enum HubError {
    /// The key resolves neither in memory nor on disk, and the operation
    /// cannot train a replacement.
    UnknownModel(String),
    /// A checkpoint was found but describes an unfitted model (no
    /// normalization state), so it cannot serve.
    Unfitted(String),
    /// Pre-training or fine-tuning for this key diverged to non-finite
    /// parameters; nothing was registered.
    Diverged(String),
    /// Reading or writing the on-disk registry failed.
    Checkpoint(CheckpointError),
    /// The on-disk checkpoint for this key was corrupt and has been
    /// quarantined (renamed to `<id>.blmy.corrupt`). This error surfaces
    /// exactly once per bad file: subsequent recalls see the key as absent
    /// — `recall` reports [`HubError::UnknownModel`] and
    /// [`ModelHub::recall_or_pretrain`] trains a replacement instead of
    /// re-failing on the poison file forever.
    Corrupt {
        /// The key whose checkpoint was quarantined.
        id: String,
        /// Why decoding failed.
        source: CheckpointError,
    },
}

impl std::fmt::Display for HubError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HubError::UnknownModel(id) => write!(f, "no model registered under key {id}"),
            HubError::Unfitted(id) => write!(f, "checkpoint {id} holds an unfitted model"),
            HubError::Diverged(id) => write!(f, "training for key {id} diverged"),
            HubError::Checkpoint(e) => write!(f, "registry checkpoint error: {e}"),
            HubError::Corrupt { id, source } => write!(
                f,
                "checkpoint for key {id} was corrupt ({source}) and has been quarantined"
            ),
        }
    }
}

impl std::error::Error for HubError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HubError::Checkpoint(e) | HubError::Corrupt { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for HubError {
    fn from(e: CheckpointError) -> Self {
        HubError::Checkpoint(e)
    }
}

/// Operation counters for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HubStats {
    /// Recalls served from the in-memory registry.
    pub memory_recalls: u64,
    /// Recalls served from the on-disk checkpoint registry.
    pub disk_recalls: u64,
    /// Models pre-trained because both registries missed.
    pub pretrains: u64,
    /// Fine-tuned descendants served from the LRU.
    pub finetune_hits: u64,
    /// Fine-tuning runs performed.
    pub finetunes: u64,
    /// Transient checkpoint-read failures retried (each retry counts one).
    pub disk_retries: u64,
    /// Corrupt checkpoints renamed to `*.blmy.corrupt` so they stop
    /// failing every future recall of their key.
    pub quarantined: u64,
}

/// How disk recalls materialize a checkpoint's tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecallMode {
    /// Read the whole file and deserialize into freshly allocated, owned
    /// tensors (the pre-v2 behavior; works for any checkpoint version).
    Deserialize,
    /// Memory-map the file and serve the weights as read-only views into
    /// the OS page cache — recall is a header parse plus page faults, many
    /// processes mapping one file share a single physical copy, and hub
    /// RSS stays bounded by page-cache eviction instead of growing with
    /// every model held. v1 files transparently fall back to deserialize.
    /// Predictions are bit-identical to [`RecallMode::Deserialize`]
    /// (`tests/mmap_store.rs`).
    #[default]
    Mmap,
}

impl RecallMode {
    /// Stable label for benchmarks and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            RecallMode::Deserialize => "deserialize",
            RecallMode::Mmap => "mmap",
        }
    }
}

/// One fine-tuned descendant in the LRU.
struct FineTunedEntry {
    /// Cache identity: parent key id, caller's context label, and a
    /// fingerprint of (samples, strategy, seed, fine-tune budget).
    parent_id: String,
    context: String,
    fingerprint: u64,
    state: Arc<ModelState>,
    last_used: u64,
}

struct FineTunedLru {
    entries: Vec<FineTunedEntry>,
    tick: u64,
}

/// Default capacity of the fine-tuned-descendant LRU.
pub const DEFAULT_FINETUNED_CAPACITY: usize = 32;

/// A concurrent registry of pretrained models and their fine-tuned
/// descendants. See the module docs for the recall → fine-tune → serve
/// lifecycle.
pub struct ModelHub {
    dir: Option<PathBuf>,
    finetuned_capacity: usize,
    recall_mode: RecallMode,
    pretrained: Mutex<HashMap<String, Arc<ModelState>>>,
    /// Per-key miss guards: after a memory miss, the disk probe *and* any
    /// pre-training run while holding only that key's mutex, so same-key
    /// racers coalesce on one checkpoint load / one training run while
    /// distinct keys resolve their misses fully in parallel. The registry
    /// mutex above is only ever held for map lookups and inserts.
    misses: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    finetuned: Mutex<FineTunedLru>,
    /// Operation counters and recall-latency distributions (see
    /// [`HubMetrics`]). [`ModelHub::stats`] and `Service::telemetry()` are
    /// both snapshot views of these same atomics.
    metrics: HubMetrics,
}

/// The single source of truth for the hub's operation counts, built on the
/// lock-free `bellamy_telemetry` primitives so [`HubStats`] and the
/// telemetry exporters cannot drift apart.
#[derive(Default)]
struct HubMetrics {
    memory_recalls: Counter,
    disk_recalls: Counter,
    pretrains: Counter,
    finetune_hits: Counter,
    finetunes: Counter,
    disk_retries: Counter,
    quarantined: Counter,
    /// Wall time of successful disk recalls (load + decode + register) in
    /// nanoseconds, one histogram per [`RecallMode`].
    recall_latency_deserialize: Histogram,
    recall_latency_mmap: Histogram,
}

impl HubMetrics {
    fn recall_latency(&self, mode: RecallMode) -> &Histogram {
        match mode {
            RecallMode::Deserialize => &self.recall_latency_deserialize,
            RecallMode::Mmap => &self.recall_latency_mmap,
        }
    }
}

/// Attempts a checkpoint read makes before giving up on transient I/O
/// errors (the first attempt plus `DISK_READ_ATTEMPTS - 1` retries).
const DISK_READ_ATTEMPTS: usize = 3;

/// Base backoff between checkpoint-read retries; attempt `n` sleeps
/// `n * DISK_RETRY_BACKOFF` (1 ms, then 2 ms) — long enough to ride out a
/// transient hiccup, short enough that a genuinely dead disk fails a
/// recall in single-digit milliseconds.
const DISK_RETRY_BACKOFF: Duration = Duration::from_millis(1);

/// Outcome of one checkpoint load attempt, classified for the retry loop.
enum AttemptError {
    /// The file disappeared mid-recall (concurrent quarantine/cleanup):
    /// permanent for this recall, never retried.
    Vanished(String),
    /// An I/O failure a later attempt might not see: retried with backoff.
    Transient(String),
    /// The bytes decoded as garbage: surfaced for corruption handling,
    /// never retried.
    Decode(CheckpointError),
}

/// What probing the on-disk registry for one key produced.
enum DiskProbe {
    /// Loaded and registered: the recall is served.
    Loaded(Arc<ModelState>),
    /// The hub has no directory or no checkpoint file for the key.
    Absent,
    /// The checkpoint decoded as garbage and was quarantined; the key is
    /// now effectively absent on disk. `recall` surfaces this once as
    /// [`HubError::Corrupt`]; `recall_or_pretrain` trains a replacement.
    Quarantined(CheckpointError),
}

impl ModelHub {
    /// A process-local hub with no persistence.
    pub fn in_memory() -> Self {
        Self {
            dir: None,
            finetuned_capacity: DEFAULT_FINETUNED_CAPACITY,
            recall_mode: RecallMode::default(),
            pretrained: Mutex::new(HashMap::new()),
            misses: Mutex::new(HashMap::new()),
            finetuned: Mutex::new(FineTunedLru {
                entries: Vec::new(),
                tick: 0,
            }),
            metrics: HubMetrics::default(),
        }
    }

    /// A hub backed by an on-disk checkpoint directory (created if absent).
    /// Two instances pointed at the same directory — across restarts or
    /// processes — share the pretrained registry.
    pub fn at(dir: impl Into<PathBuf>) -> Result<Self, HubError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| HubError::Checkpoint(CheckpointError::Io(e.to_string())))?;
        let mut hub = Self::in_memory();
        hub.dir = Some(dir);
        Ok(hub)
    }

    /// Sets the fine-tuned-descendant LRU capacity (builder style).
    pub fn with_finetuned_capacity(mut self, capacity: usize) -> Self {
        self.finetuned_capacity = capacity.max(1);
        self
    }

    /// Sets how disk recalls materialize checkpoints (builder style). The
    /// default is [`RecallMode::Mmap`]; [`RecallMode::Deserialize`] forces
    /// the classic owned-copy path.
    pub fn with_recall_mode(mut self, mode: RecallMode) -> Self {
        self.recall_mode = mode;
        self
    }

    /// The configured disk-recall mode.
    pub fn recall_mode(&self) -> RecallMode {
        self.recall_mode
    }

    /// Operation counters.
    pub fn stats(&self) -> HubStats {
        HubStats {
            memory_recalls: self.metrics.memory_recalls.get(),
            disk_recalls: self.metrics.disk_recalls.get(),
            pretrains: self.metrics.pretrains.get(),
            finetune_hits: self.metrics.finetune_hits.get(),
            finetunes: self.metrics.finetunes.get(),
            disk_retries: self.metrics.disk_retries.get(),
            quarantined: self.metrics.quarantined.get(),
        }
    }

    /// Contributes the hub's metrics to a telemetry snapshot.
    pub(crate) fn collect_telemetry(&self, snap: &mut TelemetrySnapshot) {
        let m = &self.metrics;
        snap.push_counter(
            "bellamy_hub_memory_recalls_total",
            Vec::new(),
            "recalls",
            "Recalls served from the in-memory registry.",
            m.memory_recalls.get(),
        );
        snap.push_counter(
            "bellamy_hub_disk_recalls_total",
            Vec::new(),
            "recalls",
            "Recalls served from an on-disk checkpoint.",
            m.disk_recalls.get(),
        );
        snap.push_counter(
            "bellamy_hub_pretrains_total",
            Vec::new(),
            "trainings",
            "Models pre-trained because both registries missed.",
            m.pretrains.get(),
        );
        snap.push_counter(
            "bellamy_hub_finetune_hits_total",
            Vec::new(),
            "recalls",
            "Fine-tuned descendants served from the LRU cache.",
            m.finetune_hits.get(),
        );
        snap.push_counter(
            "bellamy_hub_finetunes_total",
            Vec::new(),
            "trainings",
            "Fine-tuning runs executed.",
            m.finetunes.get(),
        );
        snap.push_counter(
            "bellamy_hub_disk_retries_total",
            Vec::new(),
            "retries",
            "Checkpoint-read attempts retried after a transient I/O failure.",
            m.disk_retries.get(),
        );
        snap.push_counter(
            "bellamy_hub_quarantined_total",
            Vec::new(),
            "checkpoints",
            "Corrupt checkpoints renamed out of the registry.",
            m.quarantined.get(),
        );
        for mode in [RecallMode::Deserialize, RecallMode::Mmap] {
            snap.push_histogram(
                "bellamy_hub_recall_latency_seconds",
                vec![("mode", mode.as_str().to_string())],
                "seconds",
                "Wall time of successful disk recalls, by recall mode.",
                m.recall_latency(mode).snapshot(),
            );
        }
    }

    /// Number of fine-tuned descendants currently cached.
    pub fn finetuned_len(&self) -> usize {
        self.finetuned.lock().entries.len()
    }

    fn checkpoint_path(&self, key: &ModelKey) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.blmy", key.id())))
    }

    /// Publishes an externally trained model under `key`: snapshots it with
    /// registry lineage, persists it when the hub has a directory, and
    /// registers it in memory. Returns the shared snapshot.
    ///
    /// The snapshot build and checkpoint write happen outside the registry
    /// lock — concurrent recalls (even pure memory hits) never wait on a
    /// publisher's disk I/O.
    pub fn publish(&self, key: &ModelKey, model: &Bellamy) -> Result<Arc<ModelState>, HubError> {
        let mut state = model
            .build_state()
            .map_err(|_| HubError::Unfitted(key.id().to_string()))?;
        state.set_lineage(Some(key.id().to_string()), None);
        let state = Arc::new(state);
        if let Some(path) = self.checkpoint_path(key) {
            match faults::HUB_DISK_PERSIST.check() {
                // A crash mid-write, as the atomic writer would leave it: a
                // torn temp file next to the (untouched) published path.
                // Recalls must keep serving the previous checkpoint.
                Some(Injected::Error) => {
                    let mut tmp = path.as_os_str().to_os_string();
                    tmp.push(".tmp");
                    let _ = std::fs::write(PathBuf::from(tmp), b"BLMY\x02\x00\x00\x00torn");
                    return Err(HubError::Checkpoint(CheckpointError::Io(
                        "injected persist fault".to_string(),
                    )));
                }
                // A crash mid-write, as a later recall will find it:
                // garbage bytes land where the checkpoint should be.
                Some(Injected::Corrupt) => {
                    std::fs::write(&path, b"BLMY\x7f\x7f\x7f\x7finjected-corruption")
                        .map_err(|e| HubError::Checkpoint(CheckpointError::Io(e.to_string())))?;
                }
                None => state.save(path)?,
            }
        }
        self.pretrained
            .lock()
            .insert(key.id().to_string(), Arc::clone(&state));
        Ok(state)
    }

    /// The pure in-memory lookup: registry lock only, bump the hit counter.
    fn recall_memory(&self, key: &ModelKey) -> Option<Arc<ModelState>> {
        let registry = self.pretrained.lock();
        let state = registry.get(key.id())?;
        self.metrics.memory_recalls.inc();
        Some(Arc::clone(state))
    }

    /// The miss guard for `key`. The miss-map mutex is only ever held to
    /// clone or remove an `Arc` — never while waiting on a key guard or the
    /// registry — so no hold-and-wait cycle can form.
    fn miss_guard(&self, key: &ModelKey) -> Arc<Mutex<()>> {
        let mut misses = self.misses.lock();
        Arc::clone(misses.entry(key.id().to_string()).or_default())
    }

    /// Drops the miss guard entry once the key is registered (waiters
    /// already holding the `Arc` re-check the registry and hit in memory).
    fn clear_miss_guard(&self, key: &ModelKey) {
        self.misses.lock().remove(key.id());
    }

    /// Loads the checkpoint at `path` in the configured [`RecallMode`],
    /// retrying transient I/O failures with bounded backoff (a flaky
    /// network disk should not fail a recall that a millisecond-later
    /// attempt would serve). Both modes share one loop, so the retry
    /// budget, the `NotFound` short-circuit (the file vanished between the
    /// existence probe and the open — a concurrent quarantine or cleanup,
    /// permanent for this recall), and the `disk_retries` counter behave
    /// identically whether the bytes are read or mapped.
    ///
    /// Decode failures (corrupt content) are returned for the caller to
    /// classify — corruption is never retried here.
    fn load_checkpoint(&self, path: &Path) -> Result<Checkpoint, HubError> {
        let mut attempt = 1usize;
        loop {
            let result: Result<Checkpoint, AttemptError> = match faults::HUB_DISK_PROBE.check() {
                Some(Injected::Error) => {
                    Err(AttemptError::Transient("injected read fault".to_string()))
                }
                Some(Injected::Corrupt) => {
                    Checkpoint::from_bytes(b"BLMY\x7f\x7f\x7f\x7finjected-corruption")
                        .map_err(AttemptError::Decode)
                }
                None => self.load_checkpoint_once(path),
            };
            match result {
                Ok(ck) => return Ok(ck),
                Err(AttemptError::Decode(e)) => return Err(e.into()),
                Err(AttemptError::Vanished(msg)) => {
                    return Err(HubError::Checkpoint(CheckpointError::Io(msg)))
                }
                Err(AttemptError::Transient(_)) if attempt < DISK_READ_ATTEMPTS => {
                    self.metrics.disk_retries.inc();
                    std::thread::sleep(DISK_RETRY_BACKOFF * attempt as u32);
                    attempt += 1;
                }
                Err(AttemptError::Transient(msg)) => {
                    return Err(HubError::Checkpoint(CheckpointError::Io(msg)))
                }
            }
        }
    }

    /// One load attempt in the configured mode.
    fn load_checkpoint_once(&self, path: &Path) -> Result<Checkpoint, AttemptError> {
        match self.recall_mode {
            RecallMode::Deserialize => match std::fs::read(path) {
                Ok(bytes) => Checkpoint::from_bytes(&bytes).map_err(AttemptError::Decode),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    Err(AttemptError::Vanished(e.to_string()))
                }
                Err(e) => Err(AttemptError::Transient(e.to_string())),
            },
            RecallMode::Mmap => match std::fs::File::open(path) {
                Ok(file) => match Checkpoint::map_file(&file) {
                    Ok(ck) => Ok(ck),
                    // `map_file` surfaces OS mapping failures as `Io` —
                    // transient, same retry budget as a failed read.
                    Err(CheckpointError::Io(msg)) => Err(AttemptError::Transient(msg)),
                    Err(e) => Err(AttemptError::Decode(e)),
                },
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    Err(AttemptError::Vanished(e.to_string()))
                }
                Err(e) => Err(AttemptError::Transient(e.to_string())),
            },
        }
    }

    /// Renames a corrupt checkpoint to `<file>.corrupt` so it stops
    /// resolving for its key: one bad file fails one recall (typed as
    /// [`HubError::Corrupt`]), not every future recall of that key. The
    /// quarantined bytes stay on disk for forensics. Best-effort — if the
    /// rename itself fails the poison file survives, but the recall error
    /// still surfaces.
    fn quarantine(&self, path: &Path) {
        self.metrics.quarantined.inc();
        telemetry::events().record(
            event_kind::CHECKPOINT_QUARANTINED,
            format!("corrupt checkpoint quarantined: {}", path.display()),
        );
        let mut quarantine_name = path.as_os_str().to_os_string();
        quarantine_name.push(".corrupt");
        let _ = std::fs::rename(path, PathBuf::from(quarantine_name));
    }

    /// Probes the on-disk registry for `key`: loads, decodes, and registers
    /// its snapshot, quarantining the file when the bytes are corrupt. Must
    /// be called with the key's miss guard held.
    fn recall_disk_locked(&self, key: &ModelKey) -> Result<DiskProbe, HubError> {
        let path = match self.checkpoint_path(key) {
            Some(p) if p.exists() => p,
            _ => return Ok(DiskProbe::Absent),
        };
        let recall_started = std::time::Instant::now();
        let loaded = self.load_checkpoint(&path);
        let loaded = match faults::CHECKPOINT_DECODE.check() {
            // Mangle the magic: the decoder sees garbage where a
            // checkpoint should be.
            Some(Injected::Corrupt) => {
                Checkpoint::from_bytes(b"XXXX-injected-decode-corruption").map_err(HubError::from)
            }
            Some(Injected::Error) => Err(HubError::Checkpoint(CheckpointError::Io(
                "injected decode fault".to_string(),
            ))),
            None => loaded,
        };
        let ck = match loaded {
            Ok(ck) => ck,
            Err(HubError::Checkpoint(e)) if e.is_corruption() => {
                self.quarantine(&path);
                return Ok(DiskProbe::Quarantined(e));
            }
            Err(e) => return Err(e),
        };
        // Zero-copy: the state takes ownership of the decoded tensors —
        // mapped views for a mapped v2 checkpoint — instead of copying
        // them into a fresh model.
        let mut state = ModelState::from_checkpoint(ck).map_err(|e| match e {
            StateFromCheckpointError::Unfitted => HubError::Unfitted(key.id().to_string()),
            StateFromCheckpointError::Invalid(e) => HubError::Checkpoint(e),
        })?;
        state.set_lineage(Some(key.id().to_string()), None);
        let state = Arc::new(state);
        self.pretrained
            .lock()
            .insert(key.id().to_string(), Arc::clone(&state));
        self.metrics.disk_recalls.inc();
        self.metrics
            .recall_latency(self.recall_mode)
            .record_duration(recall_started.elapsed());
        Ok(DiskProbe::Loaded(state))
    }

    /// Recalls a pretrained model: in-memory registry first, then the
    /// on-disk checkpoint directory. Never trains.
    ///
    /// The registry mutex is only held for the map lookup/insert. A cold
    /// disk recall runs under the key's *miss guard*: same-key racers
    /// coalesce on a single checkpoint load (the losers re-check the
    /// registry and hit in memory), while distinct keys load from disk
    /// fully in parallel — and neither ever stalls a memory hit.
    pub fn recall(&self, key: &ModelKey) -> Result<Arc<ModelState>, HubError> {
        if let Some(state) = self.recall_memory(key) {
            return Ok(state);
        }
        if self.dir.is_none() {
            return Err(HubError::UnknownModel(key.id().to_string()));
        }
        let guard = self.miss_guard(key);
        let _token = guard.lock();
        // A same-key racer may have loaded while we waited on the guard.
        if let Some(state) = self.recall_memory(key) {
            return Ok(state);
        }
        // Clear the guard entry whatever the outcome — pure recalls never
        // train, so an unknown or unreadable key must not leave a map
        // entry behind (a prober polling for a yet-unpublished key would
        // otherwise grow the miss map without bound). Racers holding the
        // guard `Arc` still serialize; the next miss re-inserts.
        let outcome = self.recall_disk_locked(key);
        self.clear_miss_guard(key);
        match outcome? {
            DiskProbe::Loaded(state) => Ok(state),
            DiskProbe::Absent => Err(HubError::UnknownModel(key.id().to_string())),
            DiskProbe::Quarantined(source) => Err(HubError::Corrupt {
                id: key.id().to_string(),
                source,
            }),
        }
    }

    /// The heart of the reuse workflow: recall the model registered under
    /// `key`, or — when both the in-memory and on-disk registries miss —
    /// pre-train it on `samples()` (the closure is only invoked on a miss,
    /// so callers do not materialize training corpora for recalls), persist
    /// the checkpoint, and register the snapshot.
    ///
    /// The whole miss path (disk probe *and* training) runs under the
    /// per-key miss guard: concurrent requests for the same key serialize
    /// on that key alone (one disk load, one pre-training — no duplicated
    /// work), while misses for different keys probe the disk and pre-train
    /// fully in parallel — the shape the evaluation harness fans out.
    ///
    /// Training is deterministic in `(key.config(), cfg, seed, samples)`:
    /// the trained model is bit-identical to a hand-wired
    /// `Bellamy::new(config, seed)` + [`pretrain`] with the same arguments.
    pub fn recall_or_pretrain(
        &self,
        key: &ModelKey,
        cfg: &PretrainConfig,
        seed: u64,
        samples: impl FnOnce() -> Vec<TrainingSample>,
    ) -> Result<Arc<ModelState>, HubError> {
        // Fast path: memory hit, registry lock only.
        if let Some(state) = self.recall_memory(key) {
            return Ok(state);
        }

        let guard = self.miss_guard(key);
        let _token = guard.lock();

        // A same-key racer may have resolved the miss while we waited.
        if let Some(state) = self.recall_memory(key) {
            return Ok(state);
        }
        match self.recall_disk_locked(key) {
            Ok(DiskProbe::Loaded(state)) => {
                self.clear_miss_guard(key);
                return Ok(state);
            }
            // Absent: nothing on disk, fall through to pre-training. A
            // quarantined checkpoint is the same thing with a rename — the
            // poison file is out of the way, so train the replacement now
            // instead of failing this and every future request.
            Ok(DiskProbe::Absent) | Ok(DiskProbe::Quarantined(_)) => {}
            Err(e) => {
                // An unreadable checkpoint must not leave a stale guard
                // entry behind (mirrors `recall`): repeated failing probes
                // of distinct keys would otherwise grow the miss map
                // without bound. Racers holding the guard `Arc` still
                // serialize; the next miss re-inserts.
                self.clear_miss_guard(key);
                return Err(e);
            }
        }

        let corpus = samples();
        let mut model = Bellamy::new(key.config().clone(), seed);
        let report = pretrain(&mut model, &corpus, cfg, seed);
        if report.diverged {
            // Leave the guard entry in place: the next requester for this
            // key recreates or reuses it and may retry with another budget.
            return Err(HubError::Diverged(key.id().to_string()));
        }
        self.metrics.pretrains.inc();
        let published = self.publish(key, &model);
        // The key is registered; its guard will never be needed again.
        self.clear_miss_guard(key);
        published
    }

    /// Recalls (or derives) the fine-tuned descendant of `key` for one
    /// concrete context: on an LRU miss the parent is recalled, a trainer
    /// handle is derived from its snapshot, fine-tuned on `samples` under
    /// `strategy`, and the resulting snapshot — carrying the parent key as
    /// provenance — is cached. The LRU is keyed by (parent, `context`,
    /// samples, strategy, seed, budget), so identical requests share one
    /// descendant and anything else trains its own.
    ///
    /// The returned snapshot's predictions are bit-identical to a
    /// hand-wired [`Bellamy::from_state`] + [`fine_tune`] with the same
    /// arguments.
    pub fn fine_tuned_for(
        &self,
        key: &ModelKey,
        context: &str,
        samples: &[TrainingSample],
        cfg: &FinetuneConfig,
        strategy: ReuseStrategy,
        seed: u64,
    ) -> Result<Arc<ModelState>, HubError> {
        let parent_id = key.id().to_string();
        let fingerprint = finetune_fingerprint(samples, cfg, strategy, seed);
        {
            let mut lru = self.finetuned.lock();
            lru.tick += 1;
            let tick = lru.tick;
            if let Some(entry) = lru.entries.iter_mut().find(|e| {
                e.parent_id == parent_id && e.context == context && e.fingerprint == fingerprint
            }) {
                entry.last_used = tick;
                self.metrics.finetune_hits.inc();
                return Ok(Arc::clone(&entry.state));
            }
        }

        let parent = self.recall(key)?;
        let mut trainer = Bellamy::from_state(&parent);
        fine_tune(&mut trainer, samples, cfg, strategy, seed);
        // fine_tune restores the best-MAE parameter state, which is finite
        // in every normal run; a non-finite outcome means the whole
        // trajectory diverged and the descendant must not be served.
        if !trainer.params().values_all_finite() {
            return Err(HubError::Diverged(parent_id));
        }
        self.metrics.finetunes.inc();
        let mut state = trainer
            .build_state()
            .map_err(|_| HubError::Unfitted(parent_id.clone()))?;
        state.set_lineage(
            Some(format!("{parent_id}@{}", sanitize(context))),
            Some(parent_id.clone()),
        );
        let state = Arc::new(state);

        let mut lru = self.finetuned.lock();
        lru.tick += 1;
        let tick = lru.tick;
        // A racer may have derived the same descendant while we trained
        // (training is deterministic, so the results are interchangeable);
        // keep its entry instead of inserting a duplicate.
        if let Some(entry) = lru.entries.iter_mut().find(|e| {
            e.parent_id == parent_id && e.context == context && e.fingerprint == fingerprint
        }) {
            entry.last_used = tick;
            return Ok(Arc::clone(&entry.state));
        }
        if lru.entries.len() >= self.finetuned_capacity {
            // Evict the least-recently-used descendant (parents stay: they
            // live in the pretrained registry).
            if let Some(pos) = lru
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            {
                lru.entries.swap_remove(pos);
            }
        }
        lru.entries.push(FineTunedEntry {
            parent_id,
            context: context.to_string(),
            fingerprint,
            state: Arc::clone(&state),
            last_used: tick,
        });
        Ok(state)
    }
}

/// Fingerprint of everything besides the parent/context label that changes
/// what a fine-tuned descendant *is*: the samples (exact bits), the reuse
/// strategy, the seed, and the fine-tuning budget.
fn finetune_fingerprint(
    samples: &[TrainingSample],
    cfg: &FinetuneConfig,
    strategy: ReuseStrategy,
    seed: u64,
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    mix(strategy.name().as_bytes());
    mix(&seed.to_le_bytes());
    mix(&(cfg.max_epochs as u64).to_le_bytes());
    mix(&cfg.target_mae.to_bits().to_le_bytes());
    mix(&(cfg.patience as u64).to_le_bytes());
    mix(&cfg.max_lr.to_bits().to_le_bytes());
    mix(&cfg.min_lr.to_bits().to_le_bytes());
    mix(&(cfg.lr_period as u64).to_le_bytes());
    mix(&cfg.weight_decay.to_bits().to_le_bytes());
    mix(&(cfg.unfreeze_budget as u64).to_le_bytes());
    mix(format!("{:?}", cfg.optimizer).as_bytes());
    // Samples are mixed with explicit structure — counts, per-list
    // lengths, a variant tag and length prefix per property — so distinct
    // sample sets cannot collide by concatenation ambiguity (e.g.
    // ["ab"] vs ["a", "b"], or Number(5) vs Text("5")).
    mix(&(samples.len() as u64).to_le_bytes());
    let mut mix_props = |props: &[bellamy_encoding::PropertyValue]| {
        mix(&(props.len() as u64).to_le_bytes());
        for p in props {
            match p {
                bellamy_encoding::PropertyValue::Number(n) => {
                    mix(&[0u8]);
                    mix(&n.to_le_bytes());
                }
                bellamy_encoding::PropertyValue::Text(t) => {
                    mix(&[1u8]);
                    mix(&(t.len() as u64).to_le_bytes());
                    mix(t.as_bytes());
                }
            }
        }
    };
    for s in samples {
        mix_props(&s.props.essential);
        mix_props(&s.props.optional);
    }
    for s in samples {
        mix(&s.scale_out.to_bits().to_le_bytes());
        mix(&s.runtime_s.to_bits().to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_identity_is_algorithm_objective_config() {
        let cfg = BellamyConfig::default();
        let a = ModelKey::new("SGD", "runtime", &cfg);
        let b = ModelKey::new("SGD", "runtime", &cfg);
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_ne!(a, ModelKey::new("Grep", "runtime", &cfg));
        assert_ne!(a, ModelKey::new("SGD", "latency", &cfg));
        let other_cfg = BellamyConfig {
            property_dim: 20,
            ..BellamyConfig::default()
        };
        let c = ModelKey::new("SGD", "runtime", &other_cfg);
        assert_ne!(a, c, "encoder config must be part of the identity");
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn keys_that_sanitize_identically_keep_distinct_ids() {
        // The sanitizer flattens "K Means" and "k-means" to the same stem;
        // the identity fingerprint over the raw strings must keep the ids
        // (and so the registry/disk entries) apart.
        let cfg = BellamyConfig::default();
        let a = ModelKey::new("K Means", "runtime", &cfg);
        let b = ModelKey::new("k-means", "runtime", &cfg);
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id(), "sanitization must not alias keys");
        // Concatenation ambiguity across the algorithm/objective boundary.
        let c = ModelKey::new("sgd-run", "time", &cfg);
        let d = ModelKey::new("sgd", "run-time", &cfg);
        assert_ne!(c.id(), d.id());
    }

    #[test]
    fn finetune_fingerprints_distinguish_structurally_close_samples() {
        use crate::features::{ContextProperties, TrainingSample};
        use bellamy_encoding::PropertyValue;
        let cfg = FinetuneConfig::default();
        let sample = |essential: Vec<PropertyValue>| TrainingSample {
            scale_out: 4.0,
            runtime_s: 100.0,
            props: ContextProperties {
                essential,
                optional: vec![],
            },
        };
        let ab = [sample(vec![PropertyValue::text("ab")])];
        let a_b = [sample(vec![
            PropertyValue::text("a"),
            PropertyValue::text("b"),
        ])];
        let num = [sample(vec![PropertyValue::Number(5)])];
        let txt = [sample(vec![PropertyValue::text("5")])];
        let strategy = ReuseStrategy::PartialUnfreeze;
        assert_ne!(
            finetune_fingerprint(&ab, &cfg, strategy, 0),
            finetune_fingerprint(&a_b, &cfg, strategy, 0),
            "list splits must not collide"
        );
        assert_ne!(
            finetune_fingerprint(&num, &cfg, strategy, 0),
            finetune_fingerprint(&txt, &cfg, strategy, 0),
            "variant tags must separate Number(5) from Text(\"5\")"
        );
    }

    #[test]
    fn key_id_is_filename_safe() {
        let key = ModelKey::new("K-Means", "runtime / §IV", &BellamyConfig::default());
        let id = key.id();
        assert!(id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_'));
        assert!(id.starts_with("k-means--runtime"));
        assert_eq!(key.to_string(), id);
    }

    #[test]
    fn recall_of_unknown_key_errors() {
        let hub = ModelHub::in_memory();
        let key = ModelKey::new("sgd", "runtime", &BellamyConfig::default());
        match hub.recall(&key) {
            Err(HubError::UnknownModel(id)) => assert_eq!(id, key.id()),
            other => panic!("expected UnknownModel, got {other:?}"),
        }
        assert!(hub
            .recall(&key)
            .unwrap_err()
            .to_string()
            .contains("no model"));
    }

    #[test]
    fn unknown_key_probes_do_not_grow_the_miss_guard_map() {
        // A client polling for a yet-unpublished key takes the per-key
        // miss guard on every probe; failed recalls must remove the map
        // entry again or the map grows without bound.
        let dir = std::env::temp_dir().join(format!("bellamy-missmap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let hub = ModelHub::at(&dir).unwrap();
        for i in 0..10 {
            let key = ModelKey::new(format!("algo-{i}"), "runtime", &BellamyConfig::default());
            assert!(matches!(hub.recall(&key), Err(HubError::UnknownModel(_))));
        }
        assert_eq!(
            hub.misses.lock().len(),
            0,
            "failed recalls must clear their miss-guard entries"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failing_disk_recalls_through_recall_or_pretrain_clear_the_miss_guard() {
        // An unreadable checkpoint (here: the path is a directory, an I/O
        // error that is not NotFound and not corruption, so no quarantine
        // rescues it) makes the disk probe inside `recall_or_pretrain`
        // error before training; the per-key guard entry must still be
        // removed, or repeated failing probes of distinct keys grow the
        // miss map without bound.
        let dir = std::env::temp_dir().join(format!("bellamy-badck-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let hub = ModelHub::at(&dir).unwrap();
        for i in 0..4 {
            let key = ModelKey::new(format!("bad-{i}"), "runtime", &BellamyConfig::default());
            std::fs::create_dir_all(dir.join(format!("{}.blmy", key.id()))).unwrap();
            assert!(
                hub.recall_or_pretrain(&key, &PretrainConfig::default(), 0, Vec::new)
                    .is_err(),
                "unreadable checkpoint must surface as an error, not train"
            );
        }
        assert_eq!(
            hub.misses.lock().len(),
            0,
            "erroring disk recalls must clear their miss-guard entries"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn publish_rejects_unfitted_models() {
        let hub = ModelHub::in_memory();
        let key = ModelKey::new("sgd", "runtime", &BellamyConfig::default());
        let unfitted = Bellamy::new(BellamyConfig::default(), 0);
        assert!(matches!(
            hub.publish(&key, &unfitted),
            Err(HubError::Unfitted(_))
        ));
    }
}
