//! Model and training configuration (paper Table I).

use bellamy_nn::{Init, OptimizerChoice};

/// Architecture + training hyperparameters.
///
/// Defaults reproduce Table I: hidden dim 8, output dim 1, decoding dim 40,
/// encoding dim 4; the scale-out network `f` uses its fixed 3→16→8 shape
/// (§IV-A).
#[derive(Debug, Clone)]
pub struct BellamyConfig {
    /// Property vector length `N` (decoding dimension).
    pub property_dim: usize,
    /// Code length `M` (encoding dimension).
    pub code_dim: usize,
    /// Hidden width of the auto-encoder and of `z`.
    pub hidden_dim: usize,
    /// Hidden width of the scale-out network `f`.
    pub scale_out_hidden_dim: usize,
    /// Output width `F` of the scale-out network.
    pub scale_out_dim: usize,
    /// Number of essential properties `m`.
    pub essential_props: usize,
    /// Number of optional properties `n`.
    pub optional_props: usize,
    /// Weight initialization (He per §IV-A; LeCun available for ablation).
    pub init: Init,
    /// Huber transition point, in *scaled-target* units.
    pub huber_delta: f64,
    /// Divide targets by their training mean before regression and invert at
    /// inference. Divergence #1 in DESIGN.md §7 — raw-second targets make
    /// Adam's step sizes algorithm-dependent; the MAE stopping criterion is
    /// still evaluated in seconds.
    pub scale_targets: bool,
}

impl Default for BellamyConfig {
    fn default() -> Self {
        Self {
            property_dim: 40,
            code_dim: 4,
            hidden_dim: 8,
            scale_out_hidden_dim: 16,
            scale_out_dim: 8,
            essential_props: 4,
            optional_props: 3,
            init: Init::HeNormal,
            huber_delta: 1.0,
            scale_targets: true,
        }
    }
}

impl BellamyConfig {
    /// Width of the combined vector `r = e ⊕ codes ⊕ o` fed to `z`
    /// (`F + (m+1)·M`, Eq. 5).
    pub fn combined_dim(&self) -> usize {
        self.scale_out_dim + (self.essential_props + 1) * self.code_dim
    }
}

/// Pre-training hyperparameters (Table I, "Pre-Training").
#[derive(Debug, Clone, Copy)]
pub struct PretrainConfig {
    /// Minibatch size.
    pub batch_size: usize,
    /// Number of epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Alpha-dropout probability inside the auto-encoder.
    pub dropout: f64,
    /// Worker threads computing minibatch gradients (`0` = one per
    /// available core). Results are identical for any worker count with the
    /// same effective shard count.
    pub workers: usize,
    /// Data-parallel shards each minibatch is split into (`0` = one per
    /// worker). Gradients reduce over shards in a fixed binary-tree order,
    /// so a given shard count yields bit-identical results no matter how
    /// many workers execute it; pin `shards` explicitly to reproduce runs
    /// across machines with different core counts.
    pub shards: usize,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        Self {
            batch_size: 64,
            epochs: 2500,
            lr: 1e-2,
            weight_decay: 1e-3,
            dropout: 0.1,
            workers: 0,
            shards: 0,
        }
    }
}

impl PretrainConfig {
    /// A short-budget configuration for tests and the quick repro profile.
    pub fn quick() -> Self {
        Self {
            epochs: 300,
            ..Self::default()
        }
    }

    /// The effective worker count (resolving `0` to the machine).
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            bellamy_par::default_threads()
        } else {
            self.workers
        }
    }

    /// The effective shard count (resolving `0` to the worker count).
    pub fn effective_shards(&self) -> usize {
        if self.shards == 0 {
            self.effective_workers()
        } else {
            self.shards
        }
    }
}

/// Fine-tuning hyperparameters (Table I, "Fine-Tuning").
#[derive(Debug, Clone, Copy)]
pub struct FinetuneConfig {
    /// Hard epoch cap.
    pub max_epochs: usize,
    /// Stop when training MAE (seconds) falls to this value.
    pub target_mae: f64,
    /// Stop after this many epochs without improvement.
    pub patience: usize,
    /// Upper bound of the cyclical learning-rate schedule.
    pub max_lr: f64,
    /// Lower bound of the cyclical learning-rate schedule.
    pub min_lr: f64,
    /// Cycle length in epochs.
    pub lr_period: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Epoch budget governing when `f` unfreezes: `f` becomes trainable at
    /// epoch `ceil(unfreeze_budget / n_samples)` — more data, earlier
    /// unfreeze. (The paper specifies the dependence on sample count but not
    /// the constant; DESIGN.md §7 ablates it.)
    pub unfreeze_budget: usize,
    /// Optimizer (the paper uses Adam; SGD is available for the ablation).
    pub optimizer: OptimizerChoice,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        Self {
            max_epochs: 2500,
            target_mae: 5.0,
            patience: 1000,
            max_lr: 1e-2,
            min_lr: 1e-3,
            lr_period: 100,
            weight_decay: 1e-3,
            unfreeze_budget: 250,
            optimizer: OptimizerChoice::Adam,
        }
    }
}

impl FinetuneConfig {
    /// A short-budget configuration for tests and the quick repro profile.
    pub fn quick() -> Self {
        Self {
            max_epochs: 400,
            patience: 200,
            ..Self::default()
        }
    }

    /// Epoch at which `f` unfreezes for a fine-tuning set of `n_samples`.
    pub fn unfreeze_epoch(&self, n_samples: usize) -> usize {
        self.unfreeze_budget.div_ceil(n_samples.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_dim_matches_paper() {
        // F + (m+1)·M = 8 + 5·4 = 28.
        assert_eq!(BellamyConfig::default().combined_dim(), 28);
    }

    #[test]
    fn table1_defaults() {
        let c = BellamyConfig::default();
        assert_eq!(c.property_dim, 40);
        assert_eq!(c.code_dim, 4);
        assert_eq!(c.hidden_dim, 8);
        assert_eq!(c.scale_out_hidden_dim, 16);
        assert_eq!(c.scale_out_dim, 8);
        let p = PretrainConfig::default();
        assert_eq!(p.batch_size, 64);
        assert_eq!(p.epochs, 2500);
        let f = FinetuneConfig::default();
        assert_eq!(f.max_epochs, 2500);
        assert_eq!(f.target_mae, 5.0);
        assert_eq!(f.patience, 1000);
        assert_eq!(f.max_lr, 1e-2);
        assert_eq!(f.min_lr, 1e-3);
        assert_eq!(f.weight_decay, 1e-3);
    }

    #[test]
    fn unfreeze_epoch_shrinks_with_data() {
        let f = FinetuneConfig::default();
        assert_eq!(f.unfreeze_epoch(1), 250);
        assert_eq!(f.unfreeze_epoch(5), 50);
        assert_eq!(f.unfreeze_epoch(6), 42);
        assert_eq!(
            f.unfreeze_epoch(0),
            250,
            "zero guards against division by zero"
        );
    }
}
