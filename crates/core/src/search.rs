//! Hyperparameter search for pre-training (paper §IV-A).
//!
//! The prototype samples 12 configurations from the Table I grid with Ray
//! Tune + Optuna. With a 27-cell grid and 12 samples, random search without
//! replacement is statistically indistinguishable from TPE here (DESIGN.md
//! §3), so that is what this module implements — trials run in parallel on
//! the workspace thread pool and are scored by held-out MAE.

use crate::config::{BellamyConfig, PretrainConfig};
use crate::features::TrainingSample;
use crate::model::Bellamy;
use crate::train::pretrain;
use bellamy_nn::metrics;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The Table I pre-training search grid.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Alpha-dropout probabilities.
    pub dropouts: Vec<f64>,
    /// Adam learning rates.
    pub learning_rates: Vec<f64>,
    /// L2 weight decays.
    pub weight_decays: Vec<f64>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        Self {
            dropouts: vec![0.05, 0.10, 0.20],
            learning_rates: vec![1e-1, 1e-2, 1e-3],
            weight_decays: vec![1e-2, 1e-3, 1e-4],
        }
    }
}

impl SearchSpace {
    /// Total number of grid cells.
    pub fn grid_size(&self) -> usize {
        self.dropouts.len() * self.learning_rates.len() * self.weight_decays.len()
    }

    /// Samples `n` distinct configurations (all of them if `n` exceeds the
    /// grid).
    pub fn sample(
        &self,
        n: usize,
        epochs: usize,
        batch_size: usize,
        seed: u64,
    ) -> Vec<PretrainConfig> {
        let mut cells: Vec<(f64, f64, f64)> = Vec::with_capacity(self.grid_size());
        for &d in &self.dropouts {
            for &lr in &self.learning_rates {
                for &wd in &self.weight_decays {
                    cells.push((d, lr, wd));
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        // Partial Fisher–Yates: the first `n` entries become the sample.
        let take = n.min(cells.len());
        for i in 0..take {
            let j = rng.random_range(i..cells.len());
            cells.swap(i, j);
        }
        cells[..take]
            .iter()
            .map(|&(dropout, lr, weight_decay)| PretrainConfig {
                batch_size,
                epochs,
                lr,
                weight_decay,
                dropout,
                ..PretrainConfig::default()
            })
            .collect()
    }
}

/// Result of one trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// The configuration tried.
    pub config: PretrainConfig,
    /// Held-out MAE in seconds.
    pub val_mae_s: f64,
}

/// Outcome of the full search.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Every trial, in sampling order.
    pub trials: Vec<TrialResult>,
    /// Index of the winning trial.
    pub best_index: usize,
}

/// Runs the search: samples `n_trials` configurations, pre-trains each on an
/// 80/20 split of `samples` (in parallel), scores by validation MAE, then
/// re-trains the winner on all samples. Returns the final model and report.
pub fn search_pretrain(
    base: &BellamyConfig,
    samples: &[TrainingSample],
    space: &SearchSpace,
    n_trials: usize,
    epochs: usize,
    seed: u64,
    threads: usize,
) -> (Bellamy, SearchReport) {
    assert!(
        samples.len() >= 5,
        "search needs enough samples for a split"
    );
    let configs = space.sample(n_trials, epochs, 64, seed);

    // Shuffled 80/20 split.
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let cut = (samples.len() * 4 / 5).max(1);
    let train: Vec<TrainingSample> = order[..cut].iter().map(|&i| samples[i].clone()).collect();
    let val: Vec<TrainingSample> = order[cut..].iter().map(|&i| samples[i].clone()).collect();
    let val_targets: Vec<f64> = val.iter().map(|s| s.runtime_s).collect();

    let trials: Vec<TrialResult> =
        bellamy_par::par_map_with_threads(&configs, threads.max(1), |cfg| {
            let mut model = Bellamy::new(base.clone(), seed);
            pretrain(&mut model, &train, cfg, seed ^ 0x7E57);
            let preds: Vec<f64> = val
                .iter()
                .map(|s| model.predict(s.scale_out, &s.props))
                .collect();
            TrialResult {
                config: *cfg,
                val_mae_s: metrics::mae(&preds, &val_targets),
            }
        });

    let best_index = trials
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.val_mae_s.partial_cmp(&b.val_mae_s).expect("finite MAEs"))
        .map(|(i, _)| i)
        .expect("at least one trial");

    // Winner re-trains on everything.
    let mut final_model = Bellamy::new(base.clone(), seed);
    pretrain(
        &mut final_model,
        samples,
        &trials[best_index].config,
        seed ^ 0xF17A,
    );

    (final_model, SearchReport { trials, best_index })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::samples_from_runs;
    use bellamy_data::{generate_c3o, Algorithm, GeneratorConfig};

    #[test]
    fn grid_size_matches_table1() {
        assert_eq!(SearchSpace::default().grid_size(), 27);
    }

    #[test]
    fn sample_is_distinct_and_sized() {
        let space = SearchSpace::default();
        let configs = space.sample(12, 100, 64, 3);
        assert_eq!(configs.len(), 12);
        for (i, a) in configs.iter().enumerate() {
            for b in &configs[i + 1..] {
                assert!(
                    (a.dropout, a.lr, a.weight_decay) != (b.dropout, b.lr, b.weight_decay),
                    "duplicate configuration sampled"
                );
            }
        }
        // Oversampling clamps to the grid.
        assert_eq!(space.sample(100, 10, 64, 0).len(), 27);
    }

    #[test]
    fn sample_is_deterministic() {
        let space = SearchSpace::default();
        let a = space.sample(12, 10, 64, 7);
        let b = space.sample(12, 10, 64, 7);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(
                (x.dropout, x.lr, x.weight_decay),
                (y.dropout, y.lr, y.weight_decay)
            );
        }
    }

    #[test]
    fn search_returns_best_trial() {
        let ds = generate_c3o(&GeneratorConfig::default());
        let mut samples = Vec::new();
        for ctx in ds.contexts_for(Algorithm::Grep).into_iter().take(3) {
            samples.extend(samples_from_runs(&ds, &ds.runs_for_context(ctx.id)));
        }
        let (model, report) = search_pretrain(
            &BellamyConfig::default(),
            &samples,
            &SearchSpace::default(),
            3,
            25,
            5,
            2,
        );
        assert_eq!(report.trials.len(), 3);
        assert!(report.best_index < 3);
        let best = report.trials[report.best_index].val_mae_s;
        for t in &report.trials {
            assert!(best <= t.val_mae_s);
        }
        assert!(model.is_fitted());
        let p = model.predict(6.0, &samples[0].props);
        assert!(p.is_finite());
    }
}
