//! Hyperparameter search for pre-training (paper §IV-A).
//!
//! The prototype samples 12 configurations from the Table I grid with Ray
//! Tune + Optuna. With a 27-cell grid and 12 samples, random search without
//! replacement is statistically indistinguishable from TPE here (DESIGN.md
//! §3), so that is what this module implements — trials run in parallel on
//! the workspace thread pool and are scored by held-out MAE.

use crate::config::{BellamyConfig, PretrainConfig};
use crate::features::TrainingSample;
use crate::model::Bellamy;
use crate::predictor::{PredictQuery, Predictor};
use crate::train::pretrain;
use bellamy_nn::metrics;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// The Table I pre-training search grid.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Alpha-dropout probabilities.
    pub dropouts: Vec<f64>,
    /// Adam learning rates.
    pub learning_rates: Vec<f64>,
    /// L2 weight decays.
    pub weight_decays: Vec<f64>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        Self {
            dropouts: vec![0.05, 0.10, 0.20],
            learning_rates: vec![1e-1, 1e-2, 1e-3],
            weight_decays: vec![1e-2, 1e-3, 1e-4],
        }
    }
}

impl SearchSpace {
    /// Total number of grid cells.
    pub fn grid_size(&self) -> usize {
        self.dropouts.len() * self.learning_rates.len() * self.weight_decays.len()
    }

    /// Samples `n` distinct configurations (all of them if `n` exceeds the
    /// grid).
    pub fn sample(
        &self,
        n: usize,
        epochs: usize,
        batch_size: usize,
        seed: u64,
    ) -> Vec<PretrainConfig> {
        let mut cells: Vec<(f64, f64, f64)> = Vec::with_capacity(self.grid_size());
        for &d in &self.dropouts {
            for &lr in &self.learning_rates {
                for &wd in &self.weight_decays {
                    cells.push((d, lr, wd));
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        // Partial Fisher–Yates: the first `n` entries become the sample.
        let take = n.min(cells.len());
        for i in 0..take {
            let j = rng.random_range(i..cells.len());
            cells.swap(i, j);
        }
        cells[..take]
            .iter()
            .map(|&(dropout, lr, weight_decay)| PretrainConfig {
                batch_size,
                epochs,
                lr,
                weight_decay,
                dropout,
                ..PretrainConfig::default()
            })
            .collect()
    }
}

/// Result of one trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// The configuration tried.
    pub config: PretrainConfig,
    /// Held-out MAE in seconds. NaN when the trial's training diverged
    /// (non-finite loss or parameters); such trials are skipped — with a
    /// warning — by the best-candidate selection.
    pub val_mae_s: f64,
}

/// The search could not produce a usable model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// Every sampled configuration diverged to a non-finite validation MAE,
    /// so no winner could be selected.
    AllTrialsDiverged {
        /// How many trials were attempted.
        trials: usize,
    },
    /// The winning configuration was finite on the validation split but its
    /// full-dataset re-train diverged (more steps per epoch, different
    /// shuffle seed), so the final model cannot be trusted.
    WinnerDiverged {
        /// Index of the winning trial whose re-train diverged.
        best_index: usize,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::AllTrialsDiverged { trials } => write!(
                f,
                "all {trials} search trials diverged to a non-finite validation MAE; \
                 widen the grid or lower the learning rates"
            ),
            SearchError::WinnerDiverged { best_index } => write!(
                f,
                "the winning trial (index {best_index}) diverged when re-trained on \
                 the full dataset; widen the grid or lower the learning rates"
            ),
        }
    }
}

impl std::error::Error for SearchError {}

/// Index of the best finite-MAE trial, or `None` when every trial is
/// non-finite. Non-finite candidates are skipped (a diverging
/// configuration is a legitimate search outcome, not a reason to panic).
fn best_finite_trial(trials: &[TrialResult]) -> Option<usize> {
    trials
        .iter()
        .enumerate()
        .filter(|(_, t)| t.val_mae_s.is_finite())
        .min_by(|(_, a), (_, b)| {
            a.val_mae_s
                .partial_cmp(&b.val_mae_s)
                .expect("filtered to finite MAEs")
        })
        .map(|(i, _)| i)
}

/// Outcome of the full search.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Every trial, in sampling order.
    pub trials: Vec<TrialResult>,
    /// Index of the winning trial.
    pub best_index: usize,
}

/// Runs the search: samples `n_trials` configurations, pre-trains each on an
/// 80/20 split of `samples` (in parallel), scores by batched validation MAE,
/// then re-trains the winner on all samples. Returns the final model and
/// report.
///
/// Trials whose training diverges (non-finite loss or parameters — e.g. a
/// too-hot learning rate) are recorded with a NaN MAE, warned about, and
/// skipped by the winner selection; [`SearchError`] is returned only when
/// *every* trial diverged.
pub fn search_pretrain(
    base: &BellamyConfig,
    samples: &[TrainingSample],
    space: &SearchSpace,
    n_trials: usize,
    epochs: usize,
    seed: u64,
    threads: usize,
) -> Result<(Bellamy, SearchReport), SearchError> {
    assert!(
        samples.len() >= 5,
        "search needs enough samples for a split"
    );
    let configs = space.sample(n_trials, epochs, 64, seed);

    // Shuffled 80/20 split.
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let cut = (samples.len() * 4 / 5).max(1);
    let train: Vec<TrainingSample> = order[..cut].iter().map(|&i| samples[i].clone()).collect();
    let val: Vec<TrainingSample> = order[cut..].iter().map(|&i| samples[i].clone()).collect();
    let val_targets: Vec<f64> = val.iter().map(|s| s.runtime_s).collect();
    let val_queries: Vec<PredictQuery<'_>> = val
        .iter()
        .map(|s| PredictQuery {
            scale_out: s.scale_out,
            props: &s.props,
        })
        .collect();

    let trials: Vec<TrialResult> =
        bellamy_par::par_map_with_threads(&configs, threads.max(1), |cfg| {
            let mut model = Bellamy::new(base.clone(), seed);
            let report = pretrain(&mut model, &train, cfg, seed ^ 0x7E57);
            // A diverged trial must not run inference (its parameters are
            // poisoned); it scores NaN and is skipped at selection time.
            let val_mae_s = if report.diverged {
                f64::NAN
            } else {
                // Score through a published snapshot — the same shared-state
                // path the serving side uses.
                let state = model.snapshot().expect("pretrain fitted the model");
                Predictor::with_thread_local(|p| {
                    metrics::mae(p.predict_batch(&state, &val_queries), &val_targets)
                })
            };
            TrialResult {
                config: *cfg,
                val_mae_s,
            }
        });

    for (i, t) in trials.iter().enumerate() {
        if !t.val_mae_s.is_finite() {
            eprintln!(
                "warning: search trial {i} (dropout {}, lr {:e}, weight decay {:e}) \
                 diverged to a non-finite validation MAE; skipping it",
                t.config.dropout, t.config.lr, t.config.weight_decay
            );
        }
    }
    let best_index = best_finite_trial(&trials).ok_or(SearchError::AllTrialsDiverged {
        trials: trials.len(),
    })?;

    // Winner re-trains on everything. The full dataset means more steps per
    // epoch and a different shuffle stream than the trial split, so a
    // configuration at the stability edge can still diverge here — that must
    // surface as an error, not as a silently unusable model.
    let mut final_model = Bellamy::new(base.clone(), seed);
    let final_report = pretrain(
        &mut final_model,
        samples,
        &trials[best_index].config,
        seed ^ 0xF17A,
    );
    if final_report.diverged {
        return Err(SearchError::WinnerDiverged { best_index });
    }

    Ok((final_model, SearchReport { trials, best_index }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::samples_from_runs;
    use bellamy_data::{generate_c3o, Algorithm, GeneratorConfig};

    #[test]
    fn grid_size_matches_table1() {
        assert_eq!(SearchSpace::default().grid_size(), 27);
    }

    #[test]
    fn sample_is_distinct_and_sized() {
        let space = SearchSpace::default();
        let configs = space.sample(12, 100, 64, 3);
        assert_eq!(configs.len(), 12);
        for (i, a) in configs.iter().enumerate() {
            for b in &configs[i + 1..] {
                assert!(
                    (a.dropout, a.lr, a.weight_decay) != (b.dropout, b.lr, b.weight_decay),
                    "duplicate configuration sampled"
                );
            }
        }
        // Oversampling clamps to the grid.
        assert_eq!(space.sample(100, 10, 64, 0).len(), 27);
    }

    #[test]
    fn sample_is_deterministic() {
        let space = SearchSpace::default();
        let a = space.sample(12, 10, 64, 7);
        let b = space.sample(12, 10, 64, 7);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(
                (x.dropout, x.lr, x.weight_decay),
                (y.dropout, y.lr, y.weight_decay)
            );
        }
    }

    #[test]
    fn search_returns_best_trial() {
        let ds = generate_c3o(&GeneratorConfig::default());
        let mut samples = Vec::new();
        for ctx in ds.contexts_for(Algorithm::Grep).into_iter().take(3) {
            samples.extend(samples_from_runs(&ds, &ds.runs_for_context(ctx.id)));
        }
        let (model, report) = search_pretrain(
            &BellamyConfig::default(),
            &samples,
            &SearchSpace::default(),
            3,
            25,
            5,
            2,
        )
        .expect("healthy grid has finite trials");
        assert_eq!(report.trials.len(), 3);
        assert!(report.best_index < 3);
        let best = report.trials[report.best_index].val_mae_s;
        for t in &report.trials {
            assert!(best <= t.val_mae_s);
        }
        assert!(model.is_fitted());
        let p = model.predict(6.0, &samples[0].props).unwrap();
        assert!(p.is_finite());
    }

    fn trial(val_mae_s: f64) -> TrialResult {
        TrialResult {
            config: PretrainConfig::default(),
            val_mae_s,
        }
    }

    #[test]
    fn best_finite_trial_skips_non_finite_candidates() {
        let trials = vec![
            trial(f64::NAN),
            trial(12.5),
            trial(f64::INFINITY),
            trial(3.25),
            trial(7.0),
        ];
        assert_eq!(best_finite_trial(&trials), Some(3));
        assert_eq!(best_finite_trial(&[trial(f64::NAN)]), None);
        assert_eq!(
            best_finite_trial(&[trial(f64::NAN), trial(f64::INFINITY)]),
            None
        );
        assert_eq!(best_finite_trial(&[]), None);
    }

    fn grep_samples() -> Vec<TrainingSample> {
        let ds = generate_c3o(&GeneratorConfig::default());
        let mut samples = Vec::new();
        for ctx in ds.contexts_for(Algorithm::Grep).into_iter().take(2) {
            samples.extend(samples_from_runs(&ds, &ds.runs_for_context(ctx.id)));
        }
        samples
    }

    #[test]
    fn search_survives_a_diverging_candidate() {
        // Regression: a NaN learning rate poisons its trial's parameters on
        // the first optimizer step. The old selection panicked on the NaN
        // MAE via `partial_cmp(..).expect(..)`; now the diverged trial is
        // recorded as NaN and the best *finite* candidate wins.
        let samples = grep_samples();
        let space = SearchSpace {
            dropouts: vec![0.05],
            learning_rates: vec![1e-2, f64::NAN],
            weight_decays: vec![1e-3],
        };
        let (model, report) =
            search_pretrain(&BellamyConfig::default(), &samples, &space, 2, 15, 7, 2)
                .expect("one candidate is healthy");
        assert_eq!(report.trials.len(), 2);
        let diverged: Vec<&TrialResult> = report
            .trials
            .iter()
            .filter(|t| !t.val_mae_s.is_finite())
            .collect();
        assert_eq!(diverged.len(), 1, "the NaN-lr trial must score NaN");
        assert!(diverged[0].config.lr.is_nan());
        let best = &report.trials[report.best_index];
        assert!(best.val_mae_s.is_finite());
        assert_eq!(best.config.lr, 1e-2);
        assert!(model.predict(6.0, &samples[0].props).unwrap().is_finite());
    }

    #[test]
    fn search_errors_when_every_candidate_diverges() {
        let samples = grep_samples();
        let space = SearchSpace {
            dropouts: vec![0.05],
            learning_rates: vec![f64::NAN],
            weight_decays: vec![1e-3, 1e-4],
        };
        let err = match search_pretrain(&BellamyConfig::default(), &samples, &space, 2, 10, 3, 2) {
            Err(e) => e,
            Ok(_) => panic!("all trials diverge; the search must report an error"),
        };
        assert_eq!(err, SearchError::AllTrialsDiverged { trials: 2 });
        assert!(err.to_string().contains("all 2 search trials diverged"));
        assert!(SearchError::WinnerDiverged { best_index: 1 }
            .to_string()
            .contains("winning trial (index 1) diverged"));
    }
}
