//! Concurrency regression tests for the shared-snapshot serving path.
//!
//! One `Arc<ModelState>` is hammered by N threads, each with its own
//! `Predictor` workspace. The model-state split promises that concurrency
//! is *free*: no thread can observe anything but the immutable published
//! weights, so every thread's results must be bit-identical to the
//! single-threaded run, no matter how the shared lock-sharded encoding
//! cache interleaves.

use bellamy_core::state::ENCODE_CACHE_CAP;
use bellamy_core::train::pretrain;
use bellamy_core::{
    Bellamy, BellamyConfig, ModelState, PredictQuery, Predictor, PretrainConfig, TrainingSample,
};
use bellamy_data::{generate_c3o, Algorithm, GeneratorConfig};
use std::sync::Arc;

fn trained_state() -> (Arc<ModelState>, Vec<TrainingSample>) {
    let ds = generate_c3o(&GeneratorConfig::seeded(29));
    let mut samples = Vec::new();
    for ctx in ds.contexts_for(Algorithm::KMeans).into_iter().take(3) {
        samples.extend(
            ds.runs_for_context(ctx.id)
                .iter()
                .map(|r| TrainingSample::from_run(ctx, r)),
        );
    }
    let mut model = Bellamy::new(BellamyConfig::default(), 5);
    pretrain(
        &mut model,
        &samples,
        &PretrainConfig {
            epochs: 10,
            ..PretrainConfig::default()
        },
        5,
    );
    (model.snapshot().expect("pretrained"), samples)
}

#[test]
fn concurrent_predict_batch_is_bit_identical_to_single_threaded() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 25;
    let (state, samples) = trained_state();
    let samples = Arc::new(samples);

    // Single-threaded reference on a cold cache.
    let reference: Vec<u64> = {
        let queries: Vec<PredictQuery<'_>> = samples
            .iter()
            .map(|s| PredictQuery {
                scale_out: s.scale_out,
                props: &s.props,
            })
            .collect();
        Predictor::new()
            .predict_batch(&state, &queries)
            .iter()
            .map(|p| p.to_bits())
            .collect()
    };

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let state = Arc::clone(&state);
            let samples = Arc::clone(&samples);
            std::thread::spawn(move || {
                let queries: Vec<PredictQuery<'_>> = samples
                    .iter()
                    .map(|s| PredictQuery {
                        scale_out: s.scale_out,
                        props: &s.props,
                    })
                    .collect();
                let mut predictor = Predictor::new();
                let mut last = Vec::new();
                // Stagger the batch shapes a little so threads interleave
                // differently every round.
                for round in 0..ROUNDS {
                    let cut = 1 + (t + round) % queries.len();
                    predictor.predict_batch(&state, &queries[..cut]);
                    last = predictor
                        .predict_batch(&state, &queries)
                        .iter()
                        .map(|p| p.to_bits())
                        .collect();
                }
                last
            })
        })
        .collect();

    for (t, w) in workers.into_iter().enumerate() {
        let bits = w.join().expect("worker panicked");
        assert_eq!(
            bits, reference,
            "thread {t} diverged from the single-threaded reference"
        );
    }
    assert!(
        state.encoding_cache_len() <= ENCODE_CACHE_CAP,
        "shared cache exceeded its bound: {}",
        state.encoding_cache_len()
    );
}

#[test]
fn concurrent_sweeps_and_codes_share_one_snapshot() {
    const THREADS: usize = 6;
    let (state, samples) = trained_state();
    let props = Arc::new(samples[0].props.clone());
    let xs: Vec<f64> = (2..=12).map(|x| x as f64).collect();

    let reference: Vec<u64> = Predictor::new()
        .predict_sweep(&state, &props, &xs)
        .iter()
        .map(|p| p.to_bits())
        .collect();
    let code_reference = state.code_for(&props.essential[0]);

    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let state = Arc::clone(&state);
            let props = Arc::clone(&props);
            let xs = xs.clone();
            std::thread::spawn(move || {
                let mut predictor = Predictor::new();
                let sweep: Vec<u64> = predictor
                    .predict_sweep(&state, &props, &xs)
                    .iter()
                    .map(|p| p.to_bits())
                    .collect();
                let code = predictor.code_for(&state, &props.essential[0]);
                (sweep, code)
            })
        })
        .collect();

    for w in workers {
        let (sweep, code) = w.join().expect("worker panicked");
        assert_eq!(sweep, reference);
        assert_eq!(code, code_reference);
    }
}

#[test]
fn training_a_recalled_handle_never_moves_a_served_snapshot() {
    // The reuse workflow in one test: while worker threads serve a
    // published snapshot, the main thread derives a trainer handle from it
    // and mutates away. The served results must not move.
    let (state, samples) = trained_state();
    let props = samples[0].props.clone();
    let before = state.predict(6.0, &props);

    let server = {
        let state = Arc::clone(&state);
        let props = props.clone();
        std::thread::spawn(move || {
            let mut predictor = Predictor::new();
            let mut bits = Vec::new();
            for _ in 0..50 {
                bits.push(predictor.predict_one(&state, 6.0, &props).to_bits());
            }
            bits
        })
    };

    let mut trainer = Bellamy::from_state(&state);
    trainer.reinit_component("z.", 4242);
    let mutated = trainer.predict(6.0, &props).unwrap();
    assert_ne!(mutated.to_bits(), before.to_bits());

    for bits in server.join().expect("server panicked") {
        assert_eq!(bits, before.to_bits(), "served snapshot moved under load");
    }
    assert_eq!(state.predict(6.0, &props).to_bits(), before.to_bits());
}
