//! Equivalence guarantees of the batched inference path.
//!
//! Every op in the prediction forward is row-independent, so batched,
//! swept, and one-at-a-time predictions must agree **bit-for-bit** — and a
//! checkpoint round trip must not move a single bit either. These are the
//! invariants that make it safe for every internal caller (grid search,
//! fine-tune scoring, the eval harness) to share one code path. Predictions
//! run through `Arc`-shared [`ModelState`] snapshots — the same objects the
//! concurrency tests hammer from many threads.

use bellamy_core::train::pretrain;
use bellamy_core::{
    Bellamy, BellamyConfig, ModelState, PredictQuery, Predictor, PretrainConfig, TrainingSample,
};
use bellamy_data::{generate_c3o, Algorithm, GeneratorConfig};
use std::sync::Arc;

fn trained_model() -> (Bellamy, Vec<TrainingSample>) {
    let ds = generate_c3o(&GeneratorConfig::seeded(11));
    let mut samples = Vec::new();
    for ctx in ds.contexts_for(Algorithm::Sgd).into_iter().take(3) {
        samples.extend(
            ds.runs_for_context(ctx.id)
                .iter()
                .map(|r| TrainingSample::from_run(ctx, r)),
        );
    }
    let mut model = Bellamy::new(BellamyConfig::default(), 3);
    pretrain(
        &mut model,
        &samples,
        &PretrainConfig {
            epochs: 15,
            ..PretrainConfig::default()
        },
        9,
    );
    (model, samples)
}

fn trained_state() -> (Arc<ModelState>, Vec<TrainingSample>) {
    let (model, samples) = trained_model();
    (model.snapshot().expect("pretrained"), samples)
}

#[test]
fn batched_and_single_predictions_agree_exactly() {
    let (model, samples) = trained_model();
    let state = model.snapshot().unwrap();
    let queries: Vec<PredictQuery<'_>> = samples
        .iter()
        .take(64)
        .map(|s| PredictQuery {
            scale_out: s.scale_out,
            props: &s.props,
        })
        .collect();
    assert_eq!(queries.len(), 64);

    let mut predictor = Predictor::new();
    let batched = predictor.predict_batch(&state, &queries).to_vec();

    for (q, &b) in queries.iter().zip(batched.iter()) {
        // One-at-a-time through a *fresh* predictor, through the state's
        // thread-local convenience, and through the handle's fallible API:
        // all must match the batch bit-for-bit.
        let single = Predictor::new().predict_one(&state, q.scale_out, q.props);
        assert_eq!(single.to_bits(), b.to_bits(), "x = {}", q.scale_out);
        let from_state = state.predict(q.scale_out, q.props);
        assert_eq!(from_state.to_bits(), b.to_bits(), "x = {}", q.scale_out);
        let public = model.predict(q.scale_out, q.props).unwrap();
        assert_eq!(public.to_bits(), b.to_bits(), "x = {}", q.scale_out);
    }
}

#[test]
fn sweep_matches_general_batch_exactly() {
    let (state, samples) = trained_state();
    let props = &samples[0].props;
    let xs: Vec<f64> = (2..=12).map(|x| x as f64).collect();
    let queries: Vec<PredictQuery<'_>> = xs
        .iter()
        .map(|&x| PredictQuery {
            scale_out: x,
            props,
        })
        .collect();

    let mut predictor = Predictor::new();
    let swept = predictor.predict_sweep(&state, props, &xs).to_vec();
    let batched = predictor.predict_batch(&state, &queries).to_vec();
    assert_eq!(swept.len(), xs.len());
    for (i, (&s, &b)) in swept.iter().zip(batched.iter()).enumerate() {
        assert_eq!(s.to_bits(), b.to_bits(), "x = {}", xs[i]);
        assert!(s.is_finite());
    }
}

#[test]
fn checkpoint_round_trip_is_bit_identical_under_predict_batch() {
    let (model, samples) = trained_model();
    let state = model.snapshot().unwrap();
    let restored = Bellamy::from_checkpoint(&model.to_checkpoint()).expect("valid round trip");
    let restored_state = restored.snapshot().unwrap();
    assert_eq!(
        state.params_fingerprint(),
        restored_state.params_fingerprint(),
        "round trip must preserve exact weight bits"
    );

    let queries: Vec<PredictQuery<'_>> = samples
        .iter()
        .step_by(3)
        .take(48)
        .map(|s| PredictQuery {
            scale_out: s.scale_out,
            props: &s.props,
        })
        .collect();
    assert!(queries.len() >= 16);

    let mut predictor = Predictor::new();
    let original = predictor.predict_batch(&state, &queries).to_vec();
    let reloaded = predictor.predict_batch(&restored_state, &queries).to_vec();
    for (i, (&a, &b)) in original.iter().zip(reloaded.iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "query {i}: {a} vs {b} after checkpoint round trip"
        );
    }
}

#[test]
fn predictor_survives_interleaved_batch_sizes_and_models() {
    // The arena and pools must serve alternating shapes and different
    // models without cross-talk.
    let (model_a, samples) = trained_model();
    let state_a = model_a.snapshot().unwrap();
    let state_b = {
        let mut m = Bellamy::from_checkpoint(&model_a.to_checkpoint()).unwrap();
        m.reinit_component("z.", 99);
        m.snapshot().unwrap()
    };
    let props = &samples[0].props;
    let mut predictor = Predictor::new();

    let a1 = predictor.predict_one(&state_a, 4.0, props);
    let sweep = predictor
        .predict_sweep(&state_b, props, &[2.0, 4.0, 8.0])
        .to_vec();
    let a2 = predictor.predict_one(&state_a, 4.0, props);
    assert_eq!(a1.to_bits(), a2.to_bits(), "model A must be unaffected");
    assert_ne!(
        sweep[1].to_bits(),
        a1.to_bits(),
        "re-initialized z must change model B's prediction"
    );
}

#[test]
fn prediction_only_forward_matches_legacy_full_forward() {
    // The decoder-free prediction path and the seed-style full forward are
    // the same function up to floating-point association; they must agree
    // to tight tolerance (the polynomial scalar kernels are ~2 ulp from
    // libm).
    let (model, samples) = trained_model();
    for s in samples.iter().step_by(17) {
        let fast = model.predict(s.scale_out, &s.props).unwrap();
        let reference = model.predict_reference(s.scale_out, &s.props);
        assert!(
            (fast - reference).abs() <= 1e-9 * reference.abs().max(1.0),
            "x = {}: batched {fast} vs seed-style {reference}",
            s.scale_out
        );
    }
}

#[test]
fn one_predictor_serves_models_with_different_property_dims() {
    // A predictor workspace outlives any one model; its pooled matrices
    // must serve a 40-wide and a 20-wide model alternately without
    // cross-talk (each state carries its own encoding cache now, so stale
    // encodings across widths are structurally impossible).
    let (model_40, samples) = trained_model();
    let state_40 = model_40.snapshot().unwrap();
    let mut model_20 = Bellamy::new(
        BellamyConfig {
            property_dim: 20,
            ..BellamyConfig::default()
        },
        3,
    );
    pretrain(
        &mut model_20,
        &samples,
        &PretrainConfig {
            epochs: 2,
            ..PretrainConfig::default()
        },
        9,
    );
    let state_20 = model_20.snapshot().unwrap();

    let props = &samples[0].props;
    let mut predictor = Predictor::new();
    let wide = predictor.predict_one(&state_40, 4.0, props);
    let narrow = predictor.predict_one(&state_20, 4.0, props);
    let wide_again = predictor.predict_one(&state_40, 4.0, props);
    assert!(wide.is_finite() && narrow.is_finite());
    assert_eq!(
        wide.to_bits(),
        wide_again.to_bits(),
        "serving another width must not corrupt the original model's path"
    );
}

#[test]
fn empty_batch_is_empty() {
    let (state, samples) = trained_state();
    let mut predictor = Predictor::new();
    assert!(predictor.predict_batch(&state, &[]).is_empty());
    assert!(predictor
        .predict_sweep(&state, &samples[0].props, &[])
        .is_empty());
}
