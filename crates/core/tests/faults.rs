//! Fault-injection tests for the serving stack's robustness layer: a
//! panicking forward pass fails only its own batch and the supervised loop
//! restarts (bit-identical afterwards); repeated panics degrade to direct
//! per-caller prediction; overload sheds at the admission window and
//! recovers; deadline-expired submitters never race the deliverer; corrupt
//! checkpoints are quarantined instead of poisoning their key forever.
//!
//! The failpoints (`bellamy_core::faults`) are process-global statics, so
//! every test that arms one holds [`fault_lock`] for its whole body — the
//! tests serialize among themselves while the rest of the workspace's
//! suites run in their own processes, unaffected.

use bellamy_core::faults::{self, Fault, FaultPlan};
use bellamy_core::hub::HubError;
use bellamy_core::serve::PANIC_DEGRADE_LIMIT;
use bellamy_core::train::pretrain;
use bellamy_core::{
    BatcherConfig, Bellamy, BellamyConfig, BellamyError, ContextProperties, FlushPolicy, ModelHub,
    ModelKey, ModelState, Predictor, PretrainConfig, Service, TrainingSample,
};
use bellamy_encoding::PropertyValue;
use bellamy_nn::CheckpointError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard};
use std::time::Duration;

/// Serializes tests that arm the global failpoints. A panicking test must
/// not wedge the rest of the suite, so poisoning is ignored.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn corpus() -> Vec<TrainingSample> {
    (0..18)
        .map(|i| {
            let x = 2.0 + (i % 6) as f64 * 2.0;
            TrainingSample {
                scale_out: x,
                runtime_s: 90.0 + 350.0 / x + 2.0 * (i % 5) as f64,
                props: ContextProperties {
                    essential: vec![
                        PropertyValue::Number(2048 + 256 * (i as u64 % 4)),
                        PropertyValue::text("c4.2xlarge"),
                    ],
                    optional: vec![],
                },
            }
        })
        .collect()
}

fn pretrained() -> (Arc<ModelState>, Vec<TrainingSample>) {
    let samples = corpus();
    let mut model = Bellamy::new(BellamyConfig::default(), 23);
    pretrain(
        &mut model,
        &samples,
        &PretrainConfig {
            epochs: 3,
            ..PretrainConfig::default()
        },
        23,
    );
    (model.snapshot().expect("fitted"), samples)
}

fn direct_bits(state: &Arc<ModelState>, scale_out: f64, props: &ContextProperties) -> u64 {
    Predictor::with_thread_local(|p| p.predict_one(state, scale_out, props)).to_bits()
}

/// A deadline-policy service (all flushing through the supervised loop, no
/// caller assists — panics must land on the loop for these tests).
fn loop_only_service(cfg: BatcherConfig) -> Service {
    Service::builder()
        .batcher(BatcherConfig {
            policy: FlushPolicy::Deadline,
            ..cfg
        })
        .build()
        .expect("in-memory service")
}

#[test]
fn panic_mid_batch_fails_only_that_batch_and_the_loop_restarts() {
    let _serial = fault_lock();
    let (state, samples) = pretrained();
    let service = loop_only_service(BatcherConfig {
        max_batch: 4,
        max_wait: Duration::from_micros(200),
        ..BatcherConfig::default()
    });
    let client = service.client_for_state(Arc::clone(&state));
    let props = &samples[0].props;

    let _armed = faults::SERVE_FLUSH.arm(FaultPlan::once(Fault::Panic));
    assert!(
        matches!(client.predict(4.0, props), Err(BellamyError::BatchPanicked)),
        "the query in the panicked batch must get the typed, retryable error"
    );

    // The loop restarted: the very next query serves normally and stays
    // bit-identical to a direct predictor call.
    let after = client.predict(4.0, props).expect("restarted loop serves");
    assert_eq!(after.to_bits(), direct_bits(&state, 4.0, props));

    let stats = client.batcher_stats();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.restarts, 1);
    assert!(!stats.degraded, "one panic must not degrade the batcher");
}

#[test]
fn repeated_panics_degrade_to_direct_serving() {
    let _serial = fault_lock();
    let (state, samples) = pretrained();
    let service = loop_only_service(BatcherConfig {
        max_batch: 4,
        max_wait: Duration::from_micros(200),
        ..BatcherConfig::default()
    });
    let client = service.client_for_state(Arc::clone(&state));
    let props = &samples[1].props;

    let _armed =
        faults::SERVE_FLUSH.arm(FaultPlan::times(Fault::Panic, PANIC_DEGRADE_LIMIT as u64));
    for i in 0..PANIC_DEGRADE_LIMIT {
        assert!(
            matches!(client.predict(6.0, props), Err(BellamyError::BatchPanicked)),
            "panic {i} must fail its own batch"
        );
    }

    // The degrade threshold is reached: serving continues *directly* with
    // values bit-identical to the batched path.
    let after = client.predict(6.0, props).expect("degraded mode serves");
    assert_eq!(after.to_bits(), direct_bits(&state, 6.0, props));
    let stats = client.batcher_stats();
    assert!(stats.degraded, "batcher must report degraded mode");
    assert_eq!(stats.panics, PANIC_DEGRADE_LIMIT as u64);
    assert_eq!(stats.restarts, PANIC_DEGRADE_LIMIT as u64 - 1);

    // Degraded serving works from many threads at once.
    let ok = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..8 {
                    let got = client.predict(6.0, props).expect("degraded predict");
                    assert_eq!(got.to_bits(), direct_bits(&state, 6.0, props));
                    ok.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(ok.load(Ordering::Relaxed), 32);
}

#[test]
fn overload_sheds_at_the_admission_window_and_recovers() {
    let _serial = fault_lock();
    let (state, samples) = pretrained();
    let service = loop_only_service(BatcherConfig {
        max_batch: 2,
        max_wait: Duration::from_micros(500),
        max_inflight: 4,
        ..BatcherConfig::default()
    });
    let client = service.client_for_state(Arc::clone(&state));
    let props = &samples[2].props;
    let expected = direct_bits(&state, 8.0, props);

    let shed = AtomicU64::new(0);
    let served = AtomicU64::new(0);
    {
        // A slow model: each flush takes ~20ms, so 16 simultaneous callers
        // pile far past the window of 4.
        let _armed =
            faults::SERVE_FLUSH.arm(FaultPlan::always(Fault::Delay(Duration::from_millis(20))));
        let barrier = Barrier::new(16);
        std::thread::scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| {
                    barrier.wait();
                    match client.predict(8.0, props) {
                        Ok(v) => {
                            assert_eq!(v.to_bits(), expected, "served results stay bit-identical");
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(BellamyError::Overloaded { retry_after_hint }) => {
                            assert!(retry_after_hint > Duration::ZERO);
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected error under overload: {other}"),
                    }
                });
            }
        });
    }
    let (shed, served) = (shed.load(Ordering::Relaxed), served.load(Ordering::Relaxed));
    assert_eq!(shed + served, 16);
    assert!(shed > 0, "16 callers against a window of 4 must shed");
    assert!(served > 0, "admitted callers must still be served");
    let stats = client.batcher_stats();
    assert_eq!(stats.shed, shed);

    // The overload was load, not damage: with the slow-model fault gone the
    // next query is admitted and served normally.
    let after = client.predict(8.0, props).expect("recovered");
    assert_eq!(after.to_bits(), expected);
    assert_eq!(client.batcher_stats().shed, shed, "no new shedding at idle");
}

#[test]
fn deadline_expiry_never_races_the_deliverer() {
    let _serial = fault_lock();
    let (state, samples) = pretrained();
    let service = loop_only_service(BatcherConfig {
        max_batch: 64,
        max_wait: Duration::from_micros(300),
        ..BatcherConfig::default()
    });
    let client = service.client_for_state(Arc::clone(&state));
    let props = &samples[0].props;
    let expected = direct_bits(&state, 5.0, props);

    // Every flush takes ≥1ms while most budgets are far shorter: expiry
    // constantly races batch claims. The revocation contract says every
    // outcome is either a bit-identical result or a clean DeadlineExceeded
    // — never a hang, a stale read, or a crash (a revoked slot touched by
    // the deliverer would be a use-after-free; run under the release-mode
    // stress CI job to shake the interleavings).
    let _armed = faults::SERVE_FLUSH.arm(FaultPlan::always(Fault::Delay(Duration::from_millis(1))));
    let iterations: u64 = if cfg!(debug_assertions) { 40 } else { 150 };
    let expired = AtomicU64::new(0);
    let delivered = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let (expired, delivered) = (&expired, &delivered);
            let client = &client;
            scope.spawn(move || {
                for i in 0..iterations {
                    // Budgets straddle the flush time so both outcomes occur.
                    let budget = Duration::from_micros(100 + 150 * ((t + i) % 5));
                    match client.predict_with_deadline(5.0, props, budget) {
                        Ok(v) => {
                            assert_eq!(v.to_bits(), expected);
                            delivered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(BellamyError::DeadlineExceeded) => {
                            expired.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            });
        }
    });
    let (expired, delivered) = (
        expired.load(Ordering::Relaxed),
        delivered.load(Ordering::Relaxed),
    );
    assert_eq!(expired + delivered, 8 * iterations);
    assert!(
        expired > 0,
        "sub-flush budgets against a 1ms flush must expire sometimes"
    );
    assert_eq!(client.batcher_stats().deadline_expired, expired);

    // Deadline-free serving is untouched afterwards.
    let after = client.predict(5.0, props).expect("no-deadline predict");
    assert_eq!(after.to_bits(), expected);
}

#[test]
fn corrupt_checkpoints_are_quarantined_not_poisonous() {
    let _serial = fault_lock();
    let dir = std::env::temp_dir().join(format!("bellamy-quarantine-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let samples = corpus();
    let key = ModelKey::new("grep", "runtime", &BellamyConfig::default());
    let quick = PretrainConfig {
        epochs: 2,
        ..PretrainConfig::default()
    };

    // Publish a good checkpoint, then corrupt it on disk.
    {
        let hub = ModelHub::at(&dir).expect("disk hub");
        let mut model = Bellamy::new(BellamyConfig::default(), 5);
        pretrain(&mut model, &samples, &quick, 5);
        hub.publish(&key, &model).expect("publish");
    }
    let ckpt = dir.join(format!("{}.blmy", key.id()));
    assert!(ckpt.is_file(), "publish must write the checkpoint");
    std::fs::write(&ckpt, b"BLMY but definitely not a checkpoint").unwrap();

    // A fresh hub (cold memory registry) hits the corrupt file: the recall
    // fails *once*, typed, and the file is quarantined out of the way.
    let hub = ModelHub::at(&dir).expect("disk hub");
    match hub.recall(&key) {
        Err(HubError::Corrupt { id, .. }) => assert_eq!(id, key.id()),
        other => panic!("corrupt checkpoint must surface as Corrupt, got {other:?}"),
    }
    assert!(!ckpt.exists(), "the corrupt file must be renamed away");
    let quarantined = ckpt.with_extension("blmy.corrupt");
    assert!(
        quarantined.is_file(),
        "the corrupt bytes must survive at *.blmy.corrupt for forensics"
    );
    assert_eq!(hub.stats().quarantined, 1);

    // The key is now simply absent — not an eternal error.
    assert!(matches!(hub.recall(&key), Err(HubError::UnknownModel(_))));

    // recall_or_pretrain treats the quarantined slot like a cold miss and
    // trains a usable replacement.
    let replacement = hub
        .recall_or_pretrain(&key, &quick, 5, || samples.clone())
        .expect("quarantined key must retrain, not fail forever");
    assert!(replacement.predict(6.0, &samples[0].props).is_finite());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_persist_corruption_round_trips_through_quarantine() {
    let _serial = fault_lock();
    let dir = std::env::temp_dir().join(format!("bellamy-persistfault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let samples = corpus();
    let key = ModelKey::new("pagerank", "runtime", &BellamyConfig::default());
    let quick = PretrainConfig {
        epochs: 2,
        ..PretrainConfig::default()
    };

    // A crash mid-write: garbage lands on disk in place of the checkpoint.
    {
        let hub = ModelHub::at(&dir).expect("disk hub");
        let mut model = Bellamy::new(BellamyConfig::default(), 9);
        pretrain(&mut model, &samples, &quick, 9);
        let _armed = faults::HUB_DISK_PERSIST.arm(FaultPlan::once(Fault::Corrupt));
        hub.publish(&key, &model).expect("publish survives");
    }

    // The next process finds the damage, quarantines it, and recovers.
    let hub = ModelHub::at(&dir).expect("disk hub");
    assert!(matches!(hub.recall(&key), Err(HubError::Corrupt { .. })));
    assert_eq!(hub.stats().quarantined, 1);
    hub.recall_or_pretrain(&key, &quick, 9, || samples.clone())
        .expect("retrain after quarantine");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_mid_write_publish_leaves_the_previous_checkpoint_servable() {
    let _serial = fault_lock();
    let dir = std::env::temp_dir().join(format!("bellamy-midwrite-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let samples = corpus();
    let key = ModelKey::new("kmeans", "runtime", &BellamyConfig::default());
    let quick = PretrainConfig {
        epochs: 2,
        ..PretrainConfig::default()
    };

    // A good published generation, then a publisher killed mid-write: the
    // atomic writer stages into `*.blmy.tmp` and only renames on a fully
    // fsynced file, so the kill leaves a torn temp file and the published
    // path untouched.
    let mut old = Bellamy::new(BellamyConfig::default(), 11);
    pretrain(&mut old, &samples, &quick, 11);
    {
        let hub = ModelHub::at(&dir).expect("disk hub");
        hub.publish(&key, &old).expect("first publish");

        let mut update = Bellamy::new(BellamyConfig::default(), 12);
        pretrain(&mut update, &samples, &quick, 12);
        let _armed = faults::HUB_DISK_PERSIST.arm(FaultPlan::once(Fault::Error));
        assert!(
            matches!(hub.publish(&key, &update), Err(HubError::Checkpoint(_))),
            "a killed publish must surface as an error, not silently succeed"
        );
    }
    let ckpt = dir.join(format!("{}.blmy", key.id()));
    let torn = dir.join(format!("{}.blmy.tmp", key.id()));
    assert!(torn.is_file(), "the kill must leave the staged temp file");
    assert!(ckpt.is_file(), "the published path must be untouched");

    // The next process recalls the *previous* generation bit-identically;
    // the torn temp file is inert.
    let hub = ModelHub::at(&dir).expect("disk hub");
    let recalled = hub
        .recall(&key)
        .expect("the previous checkpoint must keep serving");
    for s in samples.iter().take(5) {
        assert_eq!(
            recalled.predict(s.scale_out, &s.props).to_bits(),
            old.predict(s.scale_out, &s.props).unwrap().to_bits(),
            "a torn update must not move the served weights"
        );
    }
    assert_eq!(hub.stats().quarantined, 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn payload_bit_flip_is_caught_by_the_checksum_and_quarantined() {
    let _serial = fault_lock();
    let dir = std::env::temp_dir().join(format!("bellamy-bitflip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let samples = corpus();
    let key = ModelKey::new("join", "runtime", &BellamyConfig::default());
    let quick = PretrainConfig {
        epochs: 2,
        ..PretrainConfig::default()
    };
    {
        let hub = ModelHub::at(&dir).expect("disk hub");
        let mut model = Bellamy::new(BellamyConfig::default(), 13);
        pretrain(&mut model, &samples, &quick, 13);
        hub.publish(&key, &model).expect("publish");
    }

    // One bit flips inside the weight payload — the header, magic, and
    // section table all stay plausible, so only the payload checksum can
    // tell. Without it, the flip would silently serve wrong predictions.
    let ckpt = dir.join(format!("{}.blmy", key.id()));
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let n = bytes.len();
    bytes[n - 5] ^= 0x10;
    std::fs::write(&ckpt, &bytes).unwrap();

    let hub = ModelHub::at(&dir).expect("disk hub");
    match hub.recall(&key) {
        Err(HubError::Corrupt { id, source }) => {
            assert_eq!(id, key.id());
            assert!(
                matches!(source, CheckpointError::ChecksumMismatch),
                "the flip must be caught by the checksum, got {source:?}"
            );
        }
        other => panic!("a flipped payload bit must quarantine, got {other:?}"),
    }
    assert!(!ckpt.exists(), "the damaged file must be renamed away");
    assert!(ckpt.with_extension("blmy.corrupt").is_file());
    assert_eq!(hub.stats().quarantined, 1);

    // Like any quarantine, the slot recovers by retraining.
    hub.recall_or_pretrain(&key, &quick, 13, || samples.clone())
        .expect("retrain after checksum quarantine");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transient_read_failures_are_retried_with_bounded_backoff() {
    let _serial = fault_lock();
    let dir = std::env::temp_dir().join(format!("bellamy-retry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let samples = corpus();
    let key = ModelKey::new("sgd", "runtime", &BellamyConfig::default());
    {
        let hub = ModelHub::at(&dir).expect("disk hub");
        let mut model = Bellamy::new(BellamyConfig::default(), 3);
        pretrain(
            &mut model,
            &samples,
            &PretrainConfig {
                epochs: 2,
                ..PretrainConfig::default()
            },
            3,
        );
        hub.publish(&key, &model).expect("publish");
    }

    // Two transient read failures, then the disk recovers: the recall
    // succeeds and the retries are visible in the stats.
    {
        let hub = ModelHub::at(&dir).expect("disk hub");
        let _armed = faults::HUB_DISK_PROBE.arm(FaultPlan::times(Fault::Error, 2));
        hub.recall(&key)
            .expect("two transient failures are within the retry budget");
        assert_eq!(hub.stats().disk_retries, 2);
        assert_eq!(
            hub.stats().quarantined,
            0,
            "transient I/O is never quarantined"
        );
    }

    // A persistently failing disk exhausts the bounded retries and surfaces
    // an I/O error — the checkpoint file itself is left untouched.
    {
        let hub = ModelHub::at(&dir).expect("disk hub");
        let _armed = faults::HUB_DISK_PROBE.arm(FaultPlan::always(Fault::Error));
        assert!(matches!(hub.recall(&key), Err(HubError::Checkpoint(_))));
    }
    assert!(
        dir.join(format!("{}.blmy", key.id())).is_file(),
        "an I/O-failing checkpoint must not be quarantined"
    );

    std::fs::remove_dir_all(&dir).ok();
}
