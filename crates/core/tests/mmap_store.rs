//! The zero-copy checkpoint store, end to end: a hub in mmap mode serves
//! weights straight out of the page cache (`ModelState::weights_mapped`),
//! bit-identical to the deserialize mode across every prediction surface
//! (batch, sweep, micro-batched serve) and under thread-parallel readers
//! sharing one mapped state; legacy BLMY v1 checkpoints — pinned by a
//! committed fixture — still recall in both modes.

use bellamy_core::train::pretrain;
use bellamy_core::{
    Bellamy, BellamyConfig, ContextProperties, ModelHub, ModelKey, PredictQuery, Predictor,
    PretrainConfig, RecallMode, Service, TrainingSample,
};
use bellamy_encoding::PropertyValue;
use bellamy_nn::Checkpoint;
use std::path::PathBuf;
use std::sync::Arc;

/// A small deterministic corpus (seeded by `salt` so distinct tests train
/// distinguishable models); hand-built to keep the fixture regeneration
/// path free of the trace generators.
fn corpus(salt: u64) -> Vec<TrainingSample> {
    (0..18)
        .map(|i| {
            let x = 2.0 + (i % 6) as f64 * 2.0;
            TrainingSample {
                scale_out: x,
                runtime_s: 90.0 + 350.0 / x + 2.0 * ((i + salt as usize) % 5) as f64,
                props: ContextProperties {
                    essential: vec![
                        PropertyValue::Number(2048 + 256 * (i as u64 % 4) + salt),
                        PropertyValue::text("c4.2xlarge"),
                    ],
                    optional: vec![],
                },
            }
        })
        .collect()
}

fn trained_model(seed: u64) -> (Bellamy, Vec<TrainingSample>) {
    let samples = corpus(seed);
    let mut model = Bellamy::new(BellamyConfig::default(), seed);
    pretrain(
        &mut model,
        &samples,
        &PretrainConfig {
            epochs: 3,
            ..PretrainConfig::default()
        },
        seed,
    );
    (model, samples)
}

fn unique_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bellamy-mmap-{tag}-{}", std::process::id()))
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("pretrained-v1.blmy")
}

/// Regenerates the committed v1 fixture. Ignored by default — run it
/// explicitly (`cargo test -p bellamy-core --test mmap_store
/// regenerate_v1_fixture -- --ignored`) only when the fixture must change,
/// and commit the result; the point of the fixture is that *checked-in
/// bytes* from before the v2 format keep decoding.
#[test]
#[ignore = "writes the committed fixture; run explicitly to regenerate"]
fn regenerate_v1_fixture() {
    let (model, _) = trained_model(23);
    let bytes = model.to_checkpoint().to_bytes_v1();
    std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
    std::fs::write(fixture_path(), bytes).unwrap();
}

#[test]
fn committed_v1_fixture_recalls_in_both_modes() {
    let bytes = std::fs::read(fixture_path()).expect("committed v1 fixture present");
    assert_eq!(&bytes[..4], b"BLMY");
    assert_eq!(
        u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
        1,
        "the fixture must stay a version-1 file, or it proves nothing"
    );

    // Decoding the fixture and re-encoding it (the writer now emits v2)
    // must not move a single weight.
    let ck = Checkpoint::from_bytes(&bytes).expect("v1 fixture decodes");
    let reencoded = Checkpoint::from_bytes(&ck.to_bytes()).expect("v2 re-encode decodes");
    let a = Bellamy::from_checkpoint(&ck).expect("fixture model");
    let b = Bellamy::from_checkpoint(&reencoded).expect("re-encoded model");
    let probe = corpus(23);
    for s in &probe {
        assert_eq!(
            a.predict(s.scale_out, &s.props).unwrap().to_bits(),
            b.predict(s.scale_out, &s.props).unwrap().to_bits(),
            "v1 -> v2 re-encode must be bit-exact"
        );
    }

    // The hub recalls the fixture in both modes. A v1 file has no aligned
    // payload sections, so even the mmap-mode hub materializes owned
    // weights — the mode is a strategy, not a format requirement.
    for mode in [RecallMode::Deserialize, RecallMode::Mmap] {
        let dir = unique_dir(&format!("v1-fixture-{}", mode.as_str()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let key = ModelKey::new("grep", "runtime", &BellamyConfig::default());
        std::fs::copy(fixture_path(), dir.join(format!("{}.blmy", key.id()))).unwrap();

        let hub = ModelHub::at(&dir).unwrap().with_recall_mode(mode);
        let state = hub.recall(&key).expect("v1 checkpoint must keep recalling");
        assert!(
            !state.weights_mapped(),
            "v1 has no mappable payload sections"
        );
        for s in probe.iter().take(4) {
            assert_eq!(
                state.predict(s.scale_out, &s.props).to_bits(),
                a.predict(s.scale_out, &s.props).unwrap().to_bits(),
                "hub recall ({}) must match the direct decode",
                mode.as_str()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn mapped_recall_is_bit_identical_to_deserialize_across_all_surfaces() {
    let (model, samples) = trained_model(31);
    let dir = unique_dir("parity");
    let _ = std::fs::remove_dir_all(&dir);
    let key = ModelKey::new("grep", "runtime", &BellamyConfig::default());
    ModelHub::at(&dir).unwrap().publish(&key, &model).unwrap();

    let owned = ModelHub::at(&dir)
        .unwrap()
        .with_recall_mode(RecallMode::Deserialize)
        .recall(&key)
        .unwrap();
    let mapped = ModelHub::at(&dir)
        .unwrap()
        .with_recall_mode(RecallMode::Mmap)
        .recall(&key)
        .unwrap();
    assert!(!owned.weights_mapped());
    assert!(
        mapped.weights_mapped(),
        "an mmap-mode recall of a v2 checkpoint must borrow the file"
    );
    assert_eq!(owned.params_fingerprint(), mapped.params_fingerprint());

    // predict_batch, query by query.
    let queries: Vec<PredictQuery<'_>> = samples
        .iter()
        .map(|s| PredictQuery {
            scale_out: s.scale_out,
            props: &s.props,
        })
        .collect();
    let mut predictor = Predictor::new();
    let from_owned = predictor.predict_batch(&owned, &queries).to_vec();
    let from_mapped = predictor.predict_batch(&mapped, &queries).to_vec();
    for (a, b) in from_owned.iter().zip(from_mapped.iter()) {
        assert_eq!(a.to_bits(), b.to_bits(), "predict_batch must not move");
    }

    // predict_sweep.
    let xs: Vec<f64> = (2..=12).map(|x| x as f64).collect();
    let sweep_owned = predictor
        .predict_sweep(&owned, &samples[0].props, &xs)
        .to_vec();
    let sweep_mapped = predictor
        .predict_sweep(&mapped, &samples[0].props, &xs)
        .to_vec();
    for (a, b) in sweep_owned.iter().zip(sweep_mapped.iter()) {
        assert_eq!(a.to_bits(), b.to_bits(), "predict_sweep must not move");
    }

    // The micro-batched serving front door.
    let service = Service::in_memory();
    let client_owned = service.client_for_state(Arc::clone(&owned));
    let client_mapped = service.client_for_state(Arc::clone(&mapped));
    for s in samples.iter().take(6) {
        assert_eq!(
            client_owned
                .predict(s.scale_out, &s.props)
                .unwrap()
                .to_bits(),
            client_mapped
                .predict(s.scale_out, &s.props)
                .unwrap()
                .to_bits(),
            "served predictions must not move"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fast_tier_kernels_run_over_mapped_weights() {
    // The Fast (FMA) tier issues the same aligned vector loads as the Exact
    // SIMD tier, so the mapped-storage alignment contract (page-aligned map
    // base + 64-byte-aligned payload sections) must carry it too. This
    // drives the FMA kernel table *directly* over matrices still borrowing
    // the checkpoint file and pins down:
    //
    // - FMA loads over mapped weights neither fault nor diverge: results
    //   are bit-identical to the same kernels over materialized copies,
    // - the Fast tier over mapped weights stays inside the documented ULP
    //   envelope of the Exact scalar kernels (`within_envelope`).
    //
    // (Tier dispatch is process-wide, so the *served* Fast-predict path over
    // mapped weights is exercised by the CI `BELLAMY_KERNEL=fma` leg running
    // the parity tests above through the Fast table.)
    use bellamy_linalg::{kernels, within_envelope};

    let Some(fast) = kernels::fma() else {
        return; // no FMA hardware: nothing to prove
    };
    let exact = kernels::scalar();

    let (model, _) = trained_model(59);
    let dir = unique_dir("fma-mapped");
    let _ = std::fs::remove_dir_all(&dir);
    let key = ModelKey::new("grep", "runtime", &BellamyConfig::default());
    ModelHub::at(&dir).unwrap().publish(&key, &model).unwrap();

    // Also prove the serving-level recall really maps on this platform, so
    // the kernel-level assertions below speak for the hub path.
    let state = ModelHub::at(&dir)
        .unwrap()
        .with_recall_mode(RecallMode::Mmap)
        .recall(&key)
        .unwrap();
    assert!(state.weights_mapped());

    let ck = Checkpoint::map(dir.join(format!("{}.blmy", key.id()))).unwrap();
    let mut mapped_seen = 0;
    for (_, param) in ck.params.iter() {
        let w = &param.value;
        if !w.is_mapped() {
            continue;
        }
        mapped_seen += 1;
        let (k, n) = (w.rows(), w.cols());
        let m = 3;
        let a: Vec<f64> = (0..m * k).map(|i| (i as f64 * 0.37) - 5.0).collect();
        let owned = w.clone(); // clone() materializes into owned storage
        assert!(!owned.is_mapped());

        let mut out_mapped = vec![0.0; m * n];
        let mut out_owned = vec![0.0; m * n];
        let mut out_exact = vec![0.0; m * n];
        fast.matmul(&a, w.as_slice(), &mut out_mapped, m, k, n);
        fast.matmul(&a, owned.as_slice(), &mut out_owned, m, k, n);
        exact.matmul(&a, w.as_slice(), &mut out_exact, m, k, n);

        let ws = w.as_slice();
        for (idx, ((got, want), ex)) in out_mapped
            .iter()
            .zip(&out_owned)
            .zip(&out_exact)
            .enumerate()
        {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "FMA over mapped vs owned storage must be bit-identical"
            );
            // Same envelope the accuracy harness pins: 16 ULPs, or a
            // 4(k+1)·eps relative bound against the cancellation-safe
            // running magnitude sum |a_ip · w_pj|.
            let (i, j) = (idx / n, idx % n);
            let magnitude: f64 = (0..k).map(|p| (a[i * k + p] * ws[p * n + j]).abs()).sum();
            let rel_tol = 4.0 * (k + 1) as f64 * f64::EPSILON;
            assert!(
                within_envelope(*ex, *got, 16, rel_tol, magnitude),
                "FMA over mapped weights left the Exact envelope: {ex:?} vs {got:?}"
            );
        }

        // axpy straight out of the file mapping (mapped side is read-only,
        // so the mapped slice is the x operand).
        let mut y = vec![1.0; k * n];
        fast.axpy(0.5, w.as_slice(), &mut y);
        let mut y_owned = vec![1.0; k * n];
        fast.axpy(0.5, owned.as_slice(), &mut y_owned);
        for (a, b) in y.iter().zip(&y_owned) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    assert!(
        mapped_seen >= 2,
        "a v2 mmap recall should expose several mapped parameter matrices, saw {mapped_seen}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn eight_threads_share_one_mapped_state_bit_identically() {
    let (model, samples) = trained_model(47);
    let dir = unique_dir("threads");
    let _ = std::fs::remove_dir_all(&dir);
    let key = ModelKey::new("grep", "runtime", &BellamyConfig::default());
    ModelHub::at(&dir).unwrap().publish(&key, &model).unwrap();

    let hub = ModelHub::at(&dir)
        .unwrap()
        .with_recall_mode(RecallMode::Mmap);
    let state = hub.recall(&key).unwrap();
    assert!(state.weights_mapped());

    // The single-threaded baseline, computed before the race.
    let queries: Vec<PredictQuery<'_>> = samples
        .iter()
        .map(|s| PredictQuery {
            scale_out: s.scale_out,
            props: &s.props,
        })
        .collect();
    let baseline: Vec<u64> = Predictor::new()
        .predict_batch(&state, &queries)
        .iter()
        .map(|p| p.to_bits())
        .collect();

    // Eight threads hammer the same mapped pages through private
    // predictors: same bits every round on every thread, no tearing, no
    // aliasing hazards (the map is immutable, so there is nothing to
    // tear — this pins that down).
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let (state, queries, baseline) = (&state, &queries, &baseline);
            scope.spawn(move || {
                let mut predictor = Predictor::new();
                for _ in 0..20 {
                    let got = predictor.predict_batch(state, queries);
                    for (g, want) in got.iter().zip(baseline.iter()) {
                        assert_eq!(g.to_bits(), *want, "mapped reads must never tear");
                    }
                }
            });
        }
    });

    std::fs::remove_dir_all(&dir).ok();
}
