//! Proof that the steady-state training step *and* the steady-state batched
//! inference path are allocation-free.
//!
//! A counting global allocator tallies every `alloc`/`realloc`; after the
//! warm-up epochs have sized the tape arenas, gradient workspaces, batch
//! tensors, and buffer pools, further epochs must not touch the allocator
//! at all — on the sequential path *and* on the data-parallel path (the
//! worker team parks persistent jobs, so fanning a step out is signalling
//! only). Likewise, once a `Predictor` has seen a batch shape and the
//! context's property encodings, further `predict_batch`/`predict_sweep`/
//! single-`predict` calls must not allocate. The telemetry instrumentation
//! added to these paths (counters, log₂ latency histograms) is always on,
//! so every window below also proves the record path allocation-free.

use bellamy_core::train::Pretrainer;
use bellamy_core::{
    BatcherConfig, Bellamy, BellamyConfig, ContextProperties, FlushPolicy, ModelHub, ModelKey,
    ModelState, PredictQuery, Predictor, PretrainConfig, RecallMode, Service, TrainingSample,
};
use bellamy_encoding::PropertyValue;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// A small deterministic training set; built by hand so the test does not
/// depend on the (allocation-heavy) trace generators.
fn samples(n: usize) -> Vec<TrainingSample> {
    let node_types = ["m4.xlarge", "c4.2xlarge", "r4.xlarge"];
    (0..n)
        .map(|i| {
            let x = 2.0 + (i % 6) as f64 * 2.0;
            TrainingSample {
                scale_out: x,
                runtime_s: 100.0 + 400.0 / x + 3.0 * (i % 7) as f64,
                props: ContextProperties {
                    essential: vec![
                        PropertyValue::Number(4096 + 512 * (i as u64 % 5)),
                        PropertyValue::text("dense-features"),
                        PropertyValue::text("--iterations 50"),
                        PropertyValue::text(node_types[i % node_types.len()]),
                    ],
                    optional: vec![
                        PropertyValue::Number(16_384),
                        PropertyValue::Number(8),
                        PropertyValue::text("sgd"),
                    ],
                },
            }
        })
        .collect()
}

fn allocations_during_epochs(cfg: &PretrainConfig, n_samples: usize, warmup: usize) -> u64 {
    let samples = samples(n_samples);
    let mut model = Bellamy::new(BellamyConfig::default(), 7);
    let mut trainer = Pretrainer::new(&mut model, &samples, cfg, 13);
    for _ in 0..warmup {
        trainer.run_epoch(&mut model);
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..5 {
        trainer.run_epoch(&mut model);
    }
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn steady_state_step_is_allocation_free_sequential() {
    let cfg = PretrainConfig {
        epochs: 0,
        batch_size: 8,
        workers: 1,
        shards: 1,
        ..PretrainConfig::default()
    };
    // 24 samples, batch 8: uniform batch shapes.
    let allocs = allocations_during_epochs(&cfg, 24, 2);
    assert_eq!(
        allocs, 0,
        "sequential steady-state epochs must not allocate"
    );
}

#[test]
fn steady_state_step_is_allocation_free_with_ragged_tail_batch() {
    let cfg = PretrainConfig {
        epochs: 0,
        batch_size: 8,
        workers: 1,
        shards: 2,
        ..PretrainConfig::default()
    };
    // 20 samples, batch 8: epochs alternate 8/8/4-row batches, exercising
    // the buffer-pool recycling across shape changes.
    let allocs = allocations_during_epochs(&cfg, 20, 2);
    assert_eq!(
        allocs, 0,
        "tail-batch shape changes must be served by the pools"
    );
}

#[test]
fn steady_state_step_is_allocation_free_data_parallel() {
    let cfg = PretrainConfig {
        epochs: 0,
        batch_size: 8,
        workers: 2,
        shards: 2,
        ..PretrainConfig::default()
    };
    let allocs = allocations_during_epochs(&cfg, 24, 2);
    assert_eq!(
        allocs, 0,
        "the worker-team fan-out must be signalling-only in steady state"
    );
}

/// A fitted (not necessarily well-trained — irrelevant for allocation
/// accounting) model snapshot plus a query workload over its training
/// contexts.
fn fitted_state_and_samples() -> (std::sync::Arc<ModelState>, Vec<TrainingSample>) {
    let samples = samples(24);
    let mut model = Bellamy::new(BellamyConfig::default(), 7);
    let mut trainer = Pretrainer::new(&mut model, &samples, &PretrainConfig::default(), 13);
    trainer.run_epoch(&mut model);
    (model.snapshot().expect("fitted"), samples)
}

#[test]
fn steady_state_batched_predict_is_allocation_free() {
    let (state, samples) = fitted_state_and_samples();
    let queries: Vec<PredictQuery<'_>> = samples
        .iter()
        .map(|s| PredictQuery {
            scale_out: s.scale_out,
            props: &s.props,
        })
        .collect();
    let mut predictor = Predictor::new();
    // Warm-up: size the arena/pools and populate the shared encoding cache.
    for _ in 0..2 {
        predictor.predict_batch(&state, &queries);
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10 {
        let preds = predictor.predict_batch(&state, &queries);
        assert_eq!(preds.len(), queries.len());
    }
    let allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(allocs, 0, "steady-state predict_batch must not allocate");
}

#[test]
fn steady_state_sweep_and_single_predict_are_allocation_free() {
    let (state, samples) = fitted_state_and_samples();
    let props = samples[0].props.clone();
    let xs: Vec<f64> = (2..=12).map(|x| x as f64).collect();
    let mut predictor = Predictor::new();
    predictor.predict_sweep(&state, &props, &xs);
    predictor.predict_one(&state, 6.0, &props);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10 {
        predictor.predict_sweep(&state, &props, &xs);
    }
    let sweep_allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        sweep_allocs, 0,
        "steady-state predict_sweep must not allocate"
    );

    // The alternating sweep/single shapes are both pooled now; the single-
    // query path (what `ModelState::predict` wraps) must also be free.
    predictor.predict_one(&state, 6.0, &props);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10 {
        predictor.predict_one(&state, 6.0, &props);
    }
    let single_allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        single_allocs, 0,
        "steady-state single-query predict must not allocate"
    );
}

#[test]
fn steady_state_predict_on_a_mapped_state_is_allocation_free() {
    // Weights recalled through the mmap path live in borrowed storage, not
    // an owned buffer — the kernels must not care. After warm-up, batched
    // prediction over a *mapped* state must be exactly as allocation-free
    // as over an owned one: the mapped slices feed the same kernel calls,
    // and reading a page-cache-backed slice is not an allocation.
    let samples = samples(24);
    let mut model = Bellamy::new(BellamyConfig::default(), 7);
    let mut trainer = Pretrainer::new(&mut model, &samples, &PretrainConfig::default(), 13);
    trainer.run_epoch(&mut model);

    let dir = std::env::temp_dir().join(format!("bellamy-zeroalloc-mmap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let key = ModelKey::new("grep", "runtime", &BellamyConfig::default());
    ModelHub::at(&dir).unwrap().publish(&key, &model).unwrap();
    let hub = ModelHub::at(&dir)
        .unwrap()
        .with_recall_mode(RecallMode::Mmap);
    let state = hub.recall(&key).unwrap();
    assert!(state.weights_mapped(), "the recall must borrow the file");

    let queries: Vec<PredictQuery<'_>> = samples
        .iter()
        .map(|s| PredictQuery {
            scale_out: s.scale_out,
            props: &s.props,
        })
        .collect();
    let mut predictor = Predictor::new();
    for _ in 0..2 {
        predictor.predict_batch(&state, &queries);
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10 {
        let preds = predictor.predict_batch(&state, &queries);
        assert_eq!(preds.len(), queries.len());
    }
    let allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocs, 0,
        "steady-state predict over mapped weights must not allocate"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn steady_state_micro_batched_submit_is_allocation_free() {
    // The serve front door's single-query path: submit into the pending
    // ring (preallocated), park on a stack slot, serving loop flushes
    // through a warm predictor, result lands back in the slot. After the
    // warm-up sized the arena, pool matrices, and the shared encoding
    // cache, a steady-state submit must not touch the allocator — on the
    // submitting side *or* inside the serving loop (the counter is global,
    // so this window covers both threads). The path is fully instrumented
    // (telemetry counters, the submit-latency and batch-size histograms
    // with timing enabled by default), so this also proves the record path
    // is the promised single `fetch_add` — no boxing, no formatting.
    let (state, samples) = fitted_state_and_samples();
    let props = samples[0].props.clone();
    let service = Service::builder()
        .batcher(BatcherConfig {
            max_batch: 4,
            // Deadline policy with a zero deadline: the serving loop
            // flushes every submission immediately — deterministic 1-query
            // batches through the loop alone, so the warm-up covers
            // exactly the steady-state path.
            max_wait: std::time::Duration::ZERO,
            policy: FlushPolicy::Deadline,
            ..BatcherConfig::default()
        })
        .build()
        .expect("in-memory service");
    let client = service.client_for_state(state);
    for _ in 0..4 {
        client.predict(6.0, &props).expect("warm-up");
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10 {
        let pred = client.predict(6.0, &props).expect("steady state");
        assert!(pred.is_finite());
    }
    let allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocs, 0,
        "steady-state micro-batched submit path must not allocate"
    );
}

#[test]
fn steady_state_instrumented_memory_recall_is_allocation_free() {
    // Hub recalls are instrumented (telemetry counters on every path, a
    // latency histogram on disk recalls). The memory-hit path — the one
    // serving loops lean on per request — must stay allocation-free: a
    // registry lock, one counter `fetch_add`, an `Arc` clone.
    let samples = samples(24);
    let mut model = Bellamy::new(BellamyConfig::default(), 7);
    let mut trainer = Pretrainer::new(&mut model, &samples, &PretrainConfig::default(), 13);
    trainer.run_epoch(&mut model);
    let hub = ModelHub::in_memory();
    let key = ModelKey::new("grep", "runtime-recall", &BellamyConfig::default());
    hub.publish(&key, &model).unwrap();
    for _ in 0..2 {
        hub.recall(&key).unwrap();
    }
    // The counter is process-global, so the window can overlap sibling
    // tests' allocation-heavy setup; an allocating recall would allocate
    // in *every* window, so one quiet window is proof (same pattern as the
    // fast-tier kernel test).
    let mut allocs = u64::MAX;
    for _ in 0..50 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..10 {
            let state = hub.recall(&key).expect("registered key");
            drop(state);
        }
        allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
        if allocs == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert_eq!(
        allocs, 0,
        "instrumented steady-state memory recall must not allocate"
    );
    assert!(
        hub.stats().memory_recalls >= 12,
        "the instrumented counter must have seen every recall"
    );
}

#[test]
fn kernel_dispatch_is_allocation_free_in_steady_state() {
    // The SIMD dispatch layer resolves the kernel table once (a `OnceLock`
    // the first call may initialize — that's warm-up); after that, routing
    // every matrix operation through the table must not touch the
    // allocator. This pins down that the dispatch indirection is free, not
    // just amortized.
    use bellamy_linalg::{kernels, Matrix};

    let a = Matrix::from_fn(9, 7, |i, j| (i as f64 * 0.3) - j as f64);
    let b = Matrix::from_fn(7, 9, |i, j| (j as f64 * 0.7) - i as f64);
    let c = Matrix::from_fn(9, 9, |i, j| (i + j) as f64 * 0.1);
    let mut out = Matrix::zeros(9, 9);
    let mut acc = Matrix::zeros(9, 9);

    // Warm-up: forces the one-time backend resolution and any lazy init.
    let _ = kernels::active_backend();
    a.matmul_into(&b, &mut out);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10 {
        a.matmul_into(&b, &mut out);
        out.add_into(&c, &mut acc);
        acc.hadamard_into(&c, &mut out);
        out.sub_into(&c, &mut acc);
        acc.scale_into(0.5, &mut out);
        acc.axpy(1.25, &out);
    }
    let allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocs,
        0,
        "kernel dispatch must not allocate in steady state (backend: {})",
        kernels::backend_name()
    );
}

#[test]
fn fast_tier_kernels_are_allocation_free_in_steady_state() {
    // The Fast (FMA) table must inherit the zero-allocation property of the
    // Exact tiers: tier selection changes rounding, never memory behavior.
    // The table is driven directly (dispatch is process-wide and this
    // binary may be pinned to another tier); the CI `BELLAMY_KERNEL=fma`
    // leg additionally runs every steady-state test above *through* the
    // Fast dispatch. Vacuous on hardware without FMA.
    use bellamy_linalg::kernels;

    let Some(fast) = kernels::fma() else {
        return;
    };
    let (m, k, n) = (9, 7, 8); // n == 8: the register kernel predict leans on
    let a: Vec<f64> = (0..m * k).map(|i| (i as f64 * 0.3) - 4.0).collect();
    let b: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.7) - 9.0).collect();
    let bt: Vec<f64> = (0..n * k).map(|i| (i as f64 * 0.4) - 5.0).collect();
    let at: Vec<f64> = (0..k * m).map(|i| (i as f64 * 0.2) - 3.0).collect();
    let bias: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
    let mut out = vec![0.0; m * n];
    let mut y = vec![1.0; m * n];
    let mut sum = vec![0.0; m * n];

    // Warm-up: one pass through every entry point (and the lazy CPU
    // feature detection inside `fma()` has already run above).
    fast.matmul(&a, &b, &mut out, m, k, n);

    // The counter is process-global and this test has no slow setup phase,
    // so its measurement window can overlap the allocation-heavy setup of
    // sibling tests running in parallel. A kernel that allocates does so
    // on *every* call, so retry the window a few times: one quiet window
    // proves the kernels clean, persistent counts across all windows would
    // still fail loudly.
    let mut allocs = u64::MAX;
    for _ in 0..50 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..10 {
            fast.matmul(&a, &b, &mut out, m, k, n);
            fast.matmul_tb(&a, &bt, &mut out, m, k, n);
            fast.ta_matmul(&at, &b, &mut out, k, m, n);
            fast.matmul_bias_rowapply(&a, &b, Some(&bias), &mut out, m, k, n, &mut |row| {
                for v in row.iter_mut() {
                    *v *= 0.5;
                }
            });
            fast.axpy(1.25, &out, &mut y);
            fast.add(&out, &y, &mut sum); // shared Exact elementwise entry
        }
        allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
        if allocs == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert_eq!(allocs, 0, "Fast-tier kernels allocated in steady state");
}

#[test]
fn steady_state_shared_cache_predict_is_allocation_free_and_bounded() {
    // The encoding memo moved out of the per-thread predictor into the
    // lock-sharded cache inside `ModelState`. The steady-state hit path
    // (read lock + copy) must stay allocation-free, the cache must not
    // grow under a repeating workload, and a *second* predictor serving
    // the same snapshot must benefit from the first one's warm-up (its
    // first batch only pays arena growth, never re-encoding — proven by
    // the cache size staying flat).
    let (state, samples) = fitted_state_and_samples();
    let queries: Vec<PredictQuery<'_>> = samples
        .iter()
        .map(|s| PredictQuery {
            scale_out: s.scale_out,
            props: &s.props,
        })
        .collect();

    let mut first = Predictor::new();
    for _ in 0..2 {
        first.predict_batch(&state, &queries);
    }
    let warm = state.encoding_cache_len();
    assert!(warm > 0, "the workload must populate the shared cache");
    assert!(
        warm <= bellamy_core::state::ENCODE_CACHE_CAP,
        "cache must stay bounded"
    );

    // A second workspace on the same shared state: warm its arena, then
    // demand zero allocations at steady state too.
    let mut second = Predictor::new();
    for _ in 0..2 {
        second.predict_batch(&state, &queries);
    }
    assert_eq!(
        state.encoding_cache_len(),
        warm,
        "a second predictor must reuse the shared encodings, not re-insert"
    );
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10 {
        first.predict_batch(&state, &queries);
        second.predict_batch(&state, &queries);
    }
    let allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocs, 0,
        "steady-state shared-cache predict path must not allocate"
    );
    assert_eq!(state.encoding_cache_len(), warm, "cache must stay flat");
}
