//! Service-level contract tests for `Service::telemetry()`: the snapshot
//! must expose the serve-path latency histograms and robustness counters,
//! the hub's per-mode recall metrics, the process-wide train/predict
//! metrics and kernel resolution, and must render to JSON and Prometheus
//! text. Corrupt-checkpoint quarantines must surface both as a counter and
//! as a structured event.
//!
//! Process-global metrics (train steps, predictor rows, the event log) are
//! shared across the tests in this binary, so assertions on them are lower
//! bounds; per-service serve and hub counters are exact.

use bellamy_core::train::pretrain;
use bellamy_core::{
    event_kind, BatcherConfig, Bellamy, BellamyConfig, ContextProperties, FlushPolicy, HubError,
    ModelKey, ModelState, PretrainConfig, Service, TrainingSample,
};
use bellamy_encoding::PropertyValue;
use std::sync::Arc;
use std::time::Duration;

/// A small deterministic corpus over a few distinct contexts.
fn corpus() -> Vec<TrainingSample> {
    let node_types = ["m4.xlarge", "c4.2xlarge", "r4.xlarge"];
    (0..24)
        .map(|i| {
            let x = 2.0 + (i % 6) as f64 * 2.0;
            TrainingSample {
                scale_out: x,
                runtime_s: 100.0 + 400.0 / x + 3.0 * (i % 7) as f64,
                props: ContextProperties {
                    essential: vec![
                        PropertyValue::Number(4096 + 512 * (i as u64 % 5)),
                        PropertyValue::text(node_types[i % node_types.len()]),
                    ],
                    optional: vec![PropertyValue::Number(16_384)],
                },
            }
        })
        .collect()
}

fn quick_pretrain() -> PretrainConfig {
    PretrainConfig {
        epochs: 3,
        ..PretrainConfig::default()
    }
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bellamy-telemetry-{tag}-{}", std::process::id()))
}

fn pretrained() -> Arc<ModelState> {
    let mut model = Bellamy::new(BellamyConfig::default(), 11);
    pretrain(&mut model, &corpus(), &quick_pretrain(), 11);
    model.snapshot().expect("fitted")
}

#[test]
fn snapshot_exposes_serve_hub_train_and_kernel_metrics() {
    let dir = unique_dir("full");
    let _ = std::fs::remove_dir_all(&dir);
    let key = ModelKey::new("telemetry", "runtime", &BellamyConfig::default());
    let samples = corpus();

    // First service: both registries miss, so this pretrains (train-step
    // metrics) and persists a checkpoint for the disk-recall leg below.
    let service = Service::builder()
        .hub_dir(&dir)
        .batcher(BatcherConfig {
            max_batch: 4,
            max_wait: Duration::from_micros(500),
            policy: FlushPolicy::Deadline,
            ..BatcherConfig::default()
        })
        .build()
        .expect("disk-backed service");
    let client = service
        .client_or_pretrain(&key, &quick_pretrain(), 7, || samples.clone())
        .expect("pretrain through the hub");
    for s in &samples {
        client.predict(s.scale_out, &s.props).expect("live service");
    }
    let queries = samples.len() as u64;

    let snap = service.telemetry();

    // Serve path: exact per-service counters, latency and batch-size
    // histograms, robustness counters, queue depth.
    assert_eq!(snap.counter("bellamy_serve_queries_total"), Some(queries));
    let stats = client.batcher_stats();
    assert_eq!(
        snap.counter("bellamy_serve_batches_total"),
        Some(stats.batches),
        "telemetry and BatcherStats must read the same atomics"
    );
    let flushes: u64 = ["capacity", "timeout", "quiesce", "assist", "shutdown"]
        .iter()
        .map(|reason| {
            snap.counter_with("bellamy_serve_flushes_total", "reason", reason)
                .unwrap_or_else(|| panic!("missing flush reason {reason}"))
        })
        .sum();
    assert_eq!(flushes, stats.batches, "every batch has one flush reason");
    let submit = snap
        .histogram("bellamy_serve_submit_latency_seconds")
        .expect("submit latency histogram");
    // Submit latency is sampled 1-in-8 (the clock pair costs more than the
    // rest of the record path); this thread submitted sequentially, so the
    // sampled count is exact.
    assert_eq!(submit.count(), queries.div_ceil(8));
    assert!(
        submit.quantile(0.5) <= submit.quantile(0.99),
        "p50 must not exceed p99"
    );
    let batch_size = snap
        .histogram("bellamy_serve_batch_size")
        .expect("batch size histogram");
    assert_eq!(batch_size.count(), stats.batches);
    for name in [
        "bellamy_serve_shed_total",
        "bellamy_serve_deadline_expired_total",
        "bellamy_serve_panics_total",
        "bellamy_serve_restarts_total",
    ] {
        assert_eq!(snap.counter(name), Some(0), "{name} on a healthy run");
    }
    assert_eq!(snap.gauge("bellamy_serve_queue_depth"), Some(0));
    assert_eq!(snap.gauge("bellamy_serve_degraded"), Some(0));

    // Hub: the miss pretrained exactly once; no disk recall yet.
    assert_eq!(snap.counter("bellamy_hub_pretrains_total"), Some(1));
    assert_eq!(snap.counter("bellamy_hub_disk_recalls_total"), Some(0));

    // Process-wide predictor/train metrics (lower bounds — shared with the
    // other tests in this binary).
    assert!(snap.counter("bellamy_train_steps_total").unwrap() >= 1);
    assert!(
        snap.histogram("bellamy_train_step_latency_seconds")
            .expect("train step histogram")
            .count()
            >= 1
    );
    assert!(snap.counter("bellamy_predict_queries_total").unwrap() >= queries);
    assert!(
        snap.histogram("bellamy_predict_batch_rows")
            .expect("batch rows histogram")
            .count()
            >= 1
    );

    // Kernel resolution: the info gauge is a constant 1 carrying the
    // resolution as labels.
    assert_eq!(snap.gauge("bellamy_kernel_info"), Some(1));
    let info = snap
        .samples()
        .iter()
        .find(|s| s.name == "bellamy_kernel_info")
        .expect("kernel info sample");
    assert!(info.label_value("requested").is_some());
    assert!(info.label_value("resolved").is_some());
    assert!(info.label_value("source").is_some());
    assert!(snap.gauge("bellamy_kernel_degraded").is_some());

    // Second service on the same directory: a restart recalls from disk,
    // which must show up in the per-mode recall latency histogram.
    let restarted = Service::builder()
        .hub_dir(&dir)
        .build()
        .expect("restarted service");
    restarted.client(&key).expect("disk recall");
    let snap2 = restarted.telemetry();
    assert_eq!(snap2.counter("bellamy_hub_disk_recalls_total"), Some(1));
    assert_eq!(snap2.counter("bellamy_hub_pretrains_total"), Some(0));
    let mode = restarted.hub().recall_mode().as_str();
    let recall = snap2
        .histogram_with("bellamy_hub_recall_latency_seconds", "mode", mode)
        .expect("per-mode recall latency histogram");
    assert_eq!(recall.count(), 1, "one disk recall, one latency sample");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_renders_json_and_prometheus() {
    let state = pretrained();
    let service = Service::builder().build().expect("in-memory service");
    let client = service.client_for_state(Arc::clone(&state));
    for s in corpus().iter().take(8) {
        client.predict(s.scale_out, &s.props).expect("live service");
    }
    let snap = service.telemetry();

    let json = snap.to_json();
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "JSON braces must balance"
    );
    for needle in [
        "\"metrics\"",
        "\"events\"",
        "\"bellamy_serve_queries_total\"",
        "\"bellamy_serve_submit_latency_seconds\"",
        "\"bellamy_hub_recall_latency_seconds\"",
        "\"bellamy_kernel_info\"",
    ] {
        assert!(json.contains(needle), "JSON missing {needle}");
    }

    let prom = snap.to_prometheus();
    for needle in [
        "# HELP bellamy_serve_queries_total",
        "# TYPE bellamy_serve_submit_latency_seconds histogram",
        "le=\"+Inf\"",
        "bellamy_serve_submit_latency_seconds_count",
        "bellamy_hub_recall_latency_seconds_bucket{mode=\"deserialize\"",
        "bellamy_kernel_info{",
    ] {
        assert!(prom.contains(needle), "Prometheus text missing {needle}");
    }
    assert_eq!(
        prom.matches("# HELP bellamy_hub_recall_latency_seconds")
            .count(),
        1,
        "HELP/TYPE headers must render once per metric name, not per label set"
    );
}

#[test]
fn quarantine_surfaces_as_counter_and_event() {
    let dir = unique_dir("quarantine");
    let _ = std::fs::remove_dir_all(&dir);
    let key = ModelKey::new("telemetry", "quarantine", &BellamyConfig::default());
    let samples = corpus();

    {
        let service = Service::builder().hub_dir(&dir).build().expect("service");
        service
            .client_or_pretrain(&key, &quick_pretrain(), 7, || samples.clone())
            .expect("pretrain and persist");
    }

    // A crash mid-write, as a later recall will find it: the checkpoint
    // bytes on disk are garbage.
    let checkpoint = std::fs::read_dir(&dir)
        .expect("hub dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|ext| ext == "blmy"))
        .expect("persisted checkpoint");
    std::fs::write(&checkpoint, b"BLMY\x7f\x7f\x7f\x7fgarbage").expect("corrupt it");

    let restarted = Service::builder().hub_dir(&dir).build().expect("service");
    let err = restarted.client(&key).expect_err("corrupt checkpoint");
    assert!(
        matches!(
            err,
            bellamy_core::BellamyError::Hub(HubError::Corrupt { .. })
        ),
        "got {err:?}"
    );

    let snap = restarted.telemetry();
    assert_eq!(snap.counter("bellamy_hub_quarantined_total"), Some(1));
    assert!(
        snap.events()
            .iter()
            .any(|e| e.kind == event_kind::CHECKPOINT_QUARANTINED && e.detail.contains(".blmy")),
        "quarantine must leave a structured event; got {:?}",
        snap.events()
    );

    std::fs::remove_dir_all(&dir).ok();
}
