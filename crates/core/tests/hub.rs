//! End-to-end guarantees of the `ModelHub` reuse layer: disk persistence
//! round trips bit-identically, recalls never re-train, fine-tuned
//! descendants match hand-wired fine-tuning bit-for-bit and carry
//! provenance, and the descendant LRU evicts.

use bellamy_core::finetune::fine_tune;
use bellamy_core::train::pretrain;
use bellamy_core::{
    Bellamy, BellamyConfig, FinetuneConfig, HubError, ModelHub, ModelKey, PredictQuery, Predictor,
    PretrainConfig, ReuseStrategy, TrainingSample,
};
use bellamy_data::{generate_c3o, Algorithm, GeneratorConfig};
use std::sync::Arc;

fn corpus() -> (Vec<TrainingSample>, Vec<TrainingSample>) {
    let ds = generate_c3o(&GeneratorConfig::seeded(17));
    let ctxs = ds.contexts_for(Algorithm::Grep);
    let mut history = Vec::new();
    for ctx in ctxs.iter().skip(1).take(3) {
        history.extend(
            ds.runs_for_context(ctx.id)
                .iter()
                .map(|r| TrainingSample::from_run(ctx, r)),
        );
    }
    let target: Vec<TrainingSample> = ds
        .runs_for_context(ctxs[0].id)
        .iter()
        .step_by(9)
        .map(|r| TrainingSample::from_run(ctxs[0], r))
        .collect();
    (history, target)
}

fn quick_pretrain() -> PretrainConfig {
    PretrainConfig {
        epochs: 12,
        ..PretrainConfig::default()
    }
}

fn quick_finetune() -> FinetuneConfig {
    FinetuneConfig {
        max_epochs: 60,
        patience: 40,
        ..FinetuneConfig::default()
    }
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bellamy-hub-{tag}-{}", std::process::id()))
}

#[test]
fn recall_or_pretrain_persists_and_a_second_hub_recalls_bit_identically() {
    let (history, target) = corpus();
    let dir = unique_dir("roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    let key = ModelKey::new("grep", "runtime", &BellamyConfig::default());

    // First instance: miss everywhere -> pretrain once, persist.
    let hub1 = ModelHub::at(&dir).unwrap();
    let state1 = hub1
        .recall_or_pretrain(&key, &quick_pretrain(), 7, || history.clone())
        .unwrap();
    assert_eq!(hub1.stats().pretrains, 1);
    assert_eq!(state1.registry_key(), Some(key.id()));

    // Same instance again: memory hit, same Arc, the samples closure must
    // not even run.
    let again = hub1
        .recall_or_pretrain(&key, &quick_pretrain(), 7, || {
            panic!("a memory recall must not materialize training data")
        })
        .unwrap();
    assert!(Arc::ptr_eq(&state1, &again));
    assert_eq!(hub1.stats().memory_recalls, 1);

    // A *second* hub instance on the same directory (simulated restart /
    // other process): recalls from disk, never re-trains, and serves
    // bit-identical predictions — the machinery predictor.rs pins for
    // checkpoints, here across the whole hub path.
    let hub2 = ModelHub::at(&dir).unwrap();
    let state2 = hub2
        .recall_or_pretrain(&key, &quick_pretrain(), 7, || {
            panic!("a disk recall must not re-pretrain")
        })
        .unwrap();
    assert_eq!(hub2.stats().disk_recalls, 1);
    assert_eq!(hub2.stats().pretrains, 0);
    assert_eq!(state1.params_fingerprint(), state2.params_fingerprint());

    let queries: Vec<PredictQuery<'_>> = target
        .iter()
        .map(|s| PredictQuery {
            scale_out: s.scale_out,
            props: &s.props,
        })
        .collect();
    let mut predictor = Predictor::new();
    let first = predictor.predict_batch(&state1, &queries).to_vec();
    let second = predictor.predict_batch(&state2, &queries).to_vec();
    for (a, b) in first.iter().zip(second.iter()) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "hub restart must not move predictions"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fine_tuned_for_matches_hand_wired_fine_tune_bit_for_bit() {
    let (history, target) = corpus();
    let hub = ModelHub::in_memory();
    let key = ModelKey::new("grep", "runtime-ft", &BellamyConfig::default());
    let parent = hub
        .recall_or_pretrain(&key, &quick_pretrain(), 3, || history.clone())
        .unwrap();

    let tuned = hub
        .fine_tuned_for(
            &key,
            "grep-target-ctx",
            &target,
            &quick_finetune(),
            ReuseStrategy::PartialUnfreeze,
            11,
        )
        .unwrap();

    // Hand-wired: identical pretrain (shared via the recalled parent) +
    // identical fine-tune on a privately derived handle.
    let mut hand = Bellamy::from_state(&parent);
    fine_tune(
        &mut hand,
        &target,
        &quick_finetune(),
        ReuseStrategy::PartialUnfreeze,
        11,
    );
    let hand_state = hand.snapshot().unwrap();

    assert_eq!(
        tuned.params_fingerprint(),
        hand_state.params_fingerprint(),
        "hub fine-tune must be bit-identical to the hand-wired path"
    );
    for s in &target {
        let a = tuned.predict(s.scale_out, &s.props);
        let b = hand_state.predict(s.scale_out, &s.props);
        assert_eq!(a.to_bits(), b.to_bits(), "x = {}", s.scale_out);
    }

    // Provenance: the descendant records its parent checkpoint.
    assert_eq!(tuned.parent_key(), Some(key.id()));
    assert!(tuned
        .registry_key()
        .expect("descendants are labelled")
        .contains("grep-target-ctx"));

    // Identical request: LRU hit, same Arc.
    let cached = hub
        .fine_tuned_for(
            &key,
            "grep-target-ctx",
            &target,
            &quick_finetune(),
            ReuseStrategy::PartialUnfreeze,
            11,
        )
        .unwrap();
    assert!(Arc::ptr_eq(&tuned, &cached));
    assert_eq!(hub.stats().finetune_hits, 1);
    assert_eq!(hub.stats().finetunes, 1);

    // A different strategy is a different descendant.
    let full = hub
        .fine_tuned_for(
            &key,
            "grep-target-ctx",
            &target,
            &quick_finetune(),
            ReuseStrategy::FullUnfreeze,
            11,
        )
        .unwrap();
    assert!(!Arc::ptr_eq(&tuned, &full));
    assert_eq!(hub.finetuned_len(), 2);
}

#[test]
fn finetuned_descendants_are_evicted_lru() {
    let (history, target) = corpus();
    let hub = ModelHub::in_memory().with_finetuned_capacity(2);
    let key = ModelKey::new("grep", "runtime-lru", &BellamyConfig::default());
    hub.recall_or_pretrain(&key, &quick_pretrain(), 5, || history.clone())
        .unwrap();

    let tune = |ctx: &str| {
        hub.fine_tuned_for(
            &key,
            ctx,
            &target,
            &quick_finetune(),
            ReuseStrategy::PartialUnfreeze,
            2,
        )
        .unwrap()
    };

    let a = tune("ctx-a");
    let _b = tune("ctx-b");
    assert_eq!(hub.finetuned_len(), 2);

    // Touch A so B becomes the least recently used, then insert C.
    let a_again = tune("ctx-a");
    assert!(Arc::ptr_eq(&a, &a_again), "touching must be a cache hit");
    let _c = tune("ctx-c");
    assert_eq!(hub.finetuned_len(), 2, "capacity must hold");

    // A survived (recently used): recalling it is still a hit.
    let a_third = tune("ctx-a");
    assert!(
        Arc::ptr_eq(&a, &a_third),
        "recently-used entry must survive"
    );

    // B was evicted: recalling it re-tunes (new Arc), evicting the next LRU.
    let before = hub.stats().finetunes;
    let b_again = tune("ctx-b");
    assert_eq!(
        hub.stats().finetunes,
        before + 1,
        "evicted descendant must be re-derived"
    );
    assert!(b_again.parent_key().is_some());
    assert_eq!(hub.finetuned_len(), 2);
}

#[test]
fn concurrent_recalls_train_once_per_key_and_in_parallel_across_keys() {
    let (history, _) = corpus();
    let hub = std::sync::Arc::new(ModelHub::in_memory());
    let same_key = ModelKey::new("grep", "concurrent-same", &BellamyConfig::default());

    // Four threads race the same key: exactly one pre-training must run,
    // and everyone must end up sharing the same snapshot.
    let states: Vec<_> = std::thread::scope(|scope| {
        (0..4)
            .map(|_| {
                let hub = std::sync::Arc::clone(&hub);
                let key = same_key.clone();
                let history = history.clone();
                scope.spawn(move || {
                    hub.recall_or_pretrain(&key, &quick_pretrain(), 9, || history)
                        .unwrap()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(hub.stats().pretrains, 1, "same-key racers must train once");
    for s in &states[1..] {
        assert!(Arc::ptr_eq(&states[0], s), "racers must share one Arc");
    }

    // Distinct keys trained concurrently must each get their own model
    // (this also exercises the parallel-miss path end to end).
    let results: Vec<_> = std::thread::scope(|scope| {
        (0..3)
            .map(|i| {
                let hub = std::sync::Arc::clone(&hub);
                let history = history.clone();
                scope.spawn(move || {
                    let key = ModelKey::new(
                        "grep",
                        format!("concurrent-distinct-{i}"),
                        &BellamyConfig::default(),
                    );
                    (
                        key.id().to_string(),
                        hub.recall_or_pretrain(&key, &quick_pretrain(), 10 + i, || history)
                            .unwrap(),
                    )
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(hub.stats().pretrains, 4, "each distinct key trains once");
    for (id, state) in &results {
        assert_eq!(state.registry_key(), Some(id.as_str()));
    }
}

#[test]
fn fine_tuned_for_unknown_parent_errors() {
    let (_, target) = corpus();
    let hub = ModelHub::in_memory();
    let key = ModelKey::new("grep", "never-registered", &BellamyConfig::default());
    match hub.fine_tuned_for(
        &key,
        "ctx",
        &target,
        &quick_finetune(),
        ReuseStrategy::PartialUnfreeze,
        0,
    ) {
        Err(HubError::UnknownModel(id)) => assert_eq!(id, key.id()),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
}

#[test]
fn publish_registers_an_externally_trained_model() {
    let (history, target) = corpus();
    let dir = unique_dir("publish");
    let _ = std::fs::remove_dir_all(&dir);
    let key = ModelKey::new("grep", "published", &BellamyConfig::default());

    let mut model = Bellamy::new(BellamyConfig::default(), 21);
    pretrain(&mut model, &history, &quick_pretrain(), 21);

    {
        let hub = ModelHub::at(&dir).unwrap();
        let published = hub.publish(&key, &model).unwrap();
        assert_eq!(published.registry_key(), Some(key.id()));
    }

    // A fresh hub recalls the published model from disk and serves the
    // same predictions as the original handle.
    let hub = ModelHub::at(&dir).unwrap();
    let recalled = hub.recall(&key).unwrap();
    for s in target.iter().take(5) {
        let a = model.predict(s.scale_out, &s.props).unwrap();
        let b = recalled.predict(s.scale_out, &s.props);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// A rendezvous that fails loudly instead of deadlocking: both parties
/// must arrive within the timeout, which only happens when the two hub
/// misses run concurrently.
fn rendezvous(sync: &(std::sync::Mutex<usize>, std::sync::Condvar), parties: usize) {
    let (lock, cv) = sync;
    let mut arrived = lock.lock().unwrap();
    *arrived += 1;
    cv.notify_all();
    let deadline = std::time::Duration::from_secs(30);
    while *arrived < parties {
        let (guard, timeout) = cv.wait_timeout(arrived, deadline).unwrap();
        arrived = guard;
        assert!(
            !timeout.timed_out(),
            "rendezvous timed out: hub misses for distinct keys are \
             serialized instead of running in parallel"
        );
    }
}

#[test]
fn two_slow_distinct_key_misses_resolve_in_parallel() {
    // Regression for miss coalescing granularity: the registry mutex must
    // only be held for map lookups/inserts, so two *distinct* keys whose
    // misses are slow (here: the samples closures rendezvous, standing in
    // for slow disk probes / corpus materialization) make progress
    // concurrently. If any hub-wide lock were held across the miss path,
    // both closures could never be inside the hub at once and the
    // rendezvous would time out.
    let (history, _) = corpus();
    let hub = ModelHub::at(unique_dir("parallel-miss")).unwrap();
    let sync = (std::sync::Mutex::new(0usize), std::sync::Condvar::new());

    std::thread::scope(|scope| {
        for i in 0..2u64 {
            let hub = &hub;
            let history = history.clone();
            let sync = &sync;
            scope.spawn(move || {
                let key =
                    ModelKey::new("grep", format!("slow-miss-{i}"), &BellamyConfig::default());
                let state = hub
                    .recall_or_pretrain(&key, &quick_pretrain(), 40 + i, move || {
                        // Both misses must be in here at the same time.
                        rendezvous(sync, 2);
                        history
                    })
                    .unwrap();
                assert_eq!(state.registry_key(), Some(key.id()));
            });
        }
    });
    assert_eq!(hub.stats().pretrains, 2, "each key trains exactly once");
    std::fs::remove_dir_all(unique_dir("parallel-miss")).ok();
}

#[test]
fn racing_cold_disk_recalls_coalesce_on_one_checkpoint_load() {
    // Same-key racers after a restart: the per-key miss guard must let
    // exactly one thread pay the checkpoint load while the others wait and
    // then hit in memory — no duplicated disk work, one shared Arc.
    let (history, _) = corpus();
    let dir = unique_dir("disk-coalesce");
    let _ = std::fs::remove_dir_all(&dir);
    let key = ModelKey::new("grep", "disk-coalesce", &BellamyConfig::default());
    {
        let hub = ModelHub::at(&dir).unwrap();
        hub.recall_or_pretrain(&key, &quick_pretrain(), 9, || history)
            .unwrap();
    }

    let hub = ModelHub::at(&dir).unwrap();
    let states: Vec<_> = std::thread::scope(|scope| {
        (0..4)
            .map(|_| {
                let hub = &hub;
                let key = key.clone();
                scope.spawn(move || hub.recall(&key).unwrap())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for s in &states[1..] {
        assert!(Arc::ptr_eq(&states[0], s), "racers must share one Arc");
    }
    assert_eq!(
        hub.stats().disk_recalls,
        1,
        "exactly one racer may pay the checkpoint load"
    );
    assert_eq!(
        hub.stats().memory_recalls,
        3,
        "the losers must be served from memory after waiting on the guard"
    );
    std::fs::remove_dir_all(&dir).ok();
}
