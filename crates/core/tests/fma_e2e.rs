//! End-to-end Fast-tier tolerance: eval MAE and allocation decisions.
//!
//! Kernel tier resolution is **process-wide** (one `OnceLock`), so exact
//! and fast tiers cannot be compared inside one process. Instead the parent
//! test re-spawns this test binary as two children — `BELLAMY_KERNEL=scalar`
//! and `BELLAMY_KERNEL=fma` — each of which trains the same deterministic
//! model, serves it, and emits predictions (as exact bit patterns), the
//! eval-level MAE, and `recommend_scale_out` decisions on marked lines.
//! The parent then pins the Fast tier's end-to-end budget:
//!
//! - every served prediction within a small relative tolerance of exact,
//! - MAE within 1% of the exact tier's,
//! - identical scale-out recommendations (the paper's decision surface:
//!   Fast may move runtimes by ULPs, never the chosen allocation),
//! - the fma child really resolved an FMA backend when the host has one
//!   (else it degraded, the children match bitwise, and the suite still
//!   proves the degradation path).
//!
//! A third child pins override precedence end to end: a programmatic
//! `ServiceBuilder::kernel_tier(Scalar)` issued before any kernel runs must
//! beat `BELLAMY_KERNEL=fma` from the environment, reproducing the scalar
//! child bit for bit.

use bellamy_core::train::pretrain;
use bellamy_core::{
    Bellamy, BellamyConfig, ContextProperties, ModelKey, PretrainConfig, Service, TierRequest,
    TrainingSample,
};
use bellamy_encoding::PropertyValue;
use std::process::Command;

/// Role marker for re-spawned children; absent in normal test runs.
const ROLE_ENV: &str = "BELLAMY_FMA_E2E_ROLE";
/// Prefix of machine-readable child output lines.
const TAG: &str = "FMA_E2E";

const SWEEP_LO: u32 = 2;
const SWEEP_HI: u32 = 12;
const TARGETS: [f64; 4] = [100.0, 130.0, 160.0, 220.0];

/// Same deterministic corpus family as `mmap_store.rs`.
fn corpus(salt: u64) -> Vec<TrainingSample> {
    (0..18)
        .map(|i| {
            let x = 2.0 + (i % 6) as f64 * 2.0;
            TrainingSample {
                scale_out: x,
                runtime_s: 90.0 + 350.0 / x + 2.0 * ((i + salt as usize) % 5) as f64,
                props: ContextProperties {
                    essential: vec![
                        PropertyValue::Number(2048 + 256 * (i as u64 % 4) + salt),
                        PropertyValue::text("c4.2xlarge"),
                    ],
                    optional: vec![],
                },
            }
        })
        .collect()
}

/// The child: resolves its tier (from `BELLAMY_KERNEL`, or programmatically
/// when the role says so), trains, serves, and prints the measurements.
/// Runs as a no-op unless re-spawned by a parent test.
#[test]
fn child_emit_fma_e2e() {
    let Ok(role) = std::env::var(ROLE_ENV) else {
        return;
    };
    let mut builder = Service::builder();
    if role == "program-scalar" {
        // Issued before any kernel has run in this process, so it must win
        // over whatever BELLAMY_KERNEL says.
        builder = builder.kernel_tier(TierRequest::Scalar);
    }
    let service = builder.build().unwrap();

    let samples = corpus(9);
    let mut model = Bellamy::new(BellamyConfig::default(), 9);
    pretrain(
        &mut model,
        &samples,
        &PretrainConfig {
            epochs: 3,
            ..PretrainConfig::default()
        },
        9,
    );
    let key = ModelKey::new("grep", "runtime", &BellamyConfig::default());
    let client = service.publish(&key, &model).unwrap();

    let stats = client.batcher_stats();
    println!(
        "{TAG} kernel {} {}",
        stats.kernel_requested, stats.kernel_resolved
    );

    let mut abs_err_sum = 0.0;
    for (i, s) in samples.iter().enumerate() {
        let p = client.predict(s.scale_out, &s.props).unwrap();
        abs_err_sum += (p - s.runtime_s).abs();
        println!("{TAG} pred {i} {:016x}", p.to_bits());
    }
    println!(
        "{TAG} mae {:016x}",
        (abs_err_sum / samples.len() as f64).to_bits()
    );

    for target in TARGETS {
        let rec = client.recommend_scale_out(&samples[0].props, target, SWEEP_LO, SWEEP_HI);
        match rec {
            Some(r) => println!("{TAG} rec {target} {}", r.scale_out),
            None => println!("{TAG} rec {target} none"),
        }
    }
}

#[derive(Debug, PartialEq)]
struct ChildReport {
    requested: String,
    resolved: String,
    preds: Vec<f64>,
    mae: f64,
    recs: Vec<(f64, Option<u32>)>,
}

fn run_child(kernel_env: &str, role: &str) -> ChildReport {
    let exe = std::env::current_exe().unwrap();
    let out = Command::new(exe)
        .args(["--exact", "child_emit_fma_e2e", "--nocapture"])
        .env("BELLAMY_KERNEL", kernel_env)
        .env(ROLE_ENV, role)
        .output()
        .expect("spawn child test binary");
    assert!(
        out.status.success(),
        "child ({kernel_env}/{role}) failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let mut report = ChildReport {
        requested: String::new(),
        resolved: String::new(),
        preds: Vec::new(),
        mae: f64::NAN,
        recs: Vec::new(),
    };
    for line in stdout.lines() {
        // The libtest harness glues "test child_emit_fma_e2e ... " in front
        // of the child's first print, so scan for the tag instead of
        // prefix-matching.
        let Some(at) = line.find(TAG) else {
            continue;
        };
        let rest = &line[at + TAG.len()..];
        let fields: Vec<&str> = rest.split_whitespace().collect();
        let bits = |s: &str| f64::from_bits(u64::from_str_radix(s, 16).unwrap());
        match fields.as_slice() {
            ["kernel", req, res] => {
                report.requested = (*req).to_string();
                report.resolved = (*res).to_string();
            }
            ["pred", _, hex] => report.preds.push(bits(hex)),
            ["mae", hex] => report.mae = bits(hex),
            ["rec", target, which] => {
                let rec = (*which != "none").then(|| which.parse().unwrap());
                report.recs.push((target.parse().unwrap(), rec));
            }
            _ => panic!("unparseable child line: {line}"),
        }
    }
    assert_eq!(report.preds.len(), corpus(9).len(), "missing predictions");
    assert_eq!(report.recs.len(), TARGETS.len(), "missing recommendations");
    assert!(report.mae.is_finite(), "missing MAE");
    report
}

fn host_has_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(target_arch = "aarch64")]
    {
        true
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

#[test]
fn fast_tier_stays_within_eval_and_decision_budget() {
    let exact = run_child("scalar", "env");
    let fast = run_child("fma", "env");

    assert_eq!(exact.requested, "scalar");
    assert_eq!(exact.resolved, "scalar");
    assert_eq!(fast.requested, "fma");
    if host_has_fma() {
        assert!(
            fast.resolved == "avx2-fma" || fast.resolved == "neon-fma",
            "host supports FMA but the fma child resolved {:?}",
            fast.resolved
        );
    }

    // Trained weights and served predictions may drift by fused-rounding
    // noise amplified through 3 epochs of training — but only just.
    for (i, (e, f)) in exact.preds.iter().zip(&fast.preds).enumerate() {
        let rel = (f - e).abs() / e.abs().max(1.0);
        assert!(
            rel <= 1e-6,
            "pred[{i}]: exact {e:?} vs fast {f:?} (rel {rel:e})"
        );
    }

    // Eval-level budget: the Fast tier must not move the headline accuracy
    // metric of the reproduction by more than 1%.
    let mae_budget = 0.01 * exact.mae.max(1.0);
    assert!(
        (fast.mae - exact.mae).abs() <= mae_budget,
        "MAE moved beyond budget: exact {:?} vs fast {:?}",
        exact.mae,
        fast.mae
    );

    // Decision-level budget: identical allocations at every target.
    assert_eq!(
        exact.recs, fast.recs,
        "Fast tier changed a scale-out recommendation"
    );
}

#[test]
fn programmatic_scalar_request_beats_fma_env() {
    let exact = run_child("scalar", "env");
    let forced = run_child("fma", "program-scalar");
    // The builder's request resolved first, so the env never applied: the
    // run is the scalar run, bit for bit.
    assert_eq!(forced.requested, "scalar");
    assert_eq!(forced.resolved, "scalar");
    let to_bits = |v: &[f64]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
    assert_eq!(to_bits(&exact.preds), to_bits(&forced.preds));
    assert_eq!(exact.mae.to_bits(), forced.mae.to_bits());
    assert_eq!(exact.recs, forced.recs);
}
