//! Contract tests for the `core::serve` front door: cross-caller
//! micro-batched predictions must be bit-identical to direct `Predictor`
//! calls, both flush paths (capacity and timeout) must fire, and the
//! service must compose with the hub's recall → fine-tune workflow.

use bellamy_core::train::pretrain;
use bellamy_core::{
    BatcherConfig, Bellamy, BellamyConfig, BellamyError, ContextProperties, FinetuneConfig,
    FinetunePolicy, FlushPolicy, ModelKey, ModelState, Predictor, PretrainConfig, ReuseStrategy,
    Service, TrainingSample,
};
use bellamy_encoding::PropertyValue;
use std::sync::Arc;
use std::time::Duration;

/// A small deterministic corpus over a few distinct contexts.
fn corpus() -> Vec<TrainingSample> {
    let node_types = ["m4.xlarge", "c4.2xlarge", "r4.xlarge"];
    (0..24)
        .map(|i| {
            let x = 2.0 + (i % 6) as f64 * 2.0;
            TrainingSample {
                scale_out: x,
                runtime_s: 100.0 + 400.0 / x + 3.0 * (i % 7) as f64,
                props: ContextProperties {
                    essential: vec![
                        PropertyValue::Number(4096 + 512 * (i as u64 % 5)),
                        PropertyValue::text(node_types[i % node_types.len()]),
                    ],
                    optional: vec![PropertyValue::Number(16_384)],
                },
            }
        })
        .collect()
}

fn pretrained() -> (Arc<ModelState>, Vec<TrainingSample>) {
    let samples = corpus();
    let mut model = Bellamy::new(BellamyConfig::default(), 11);
    pretrain(
        &mut model,
        &samples,
        &PretrainConfig {
            epochs: 5,
            ..PretrainConfig::default()
        },
        11,
    );
    (model.snapshot().expect("fitted"), samples)
}

#[test]
fn eight_concurrent_submitters_get_bit_identical_results() {
    let (state, samples) = pretrained();
    let service = Service::builder()
        .batcher(BatcherConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(500),
            // Deadline: all serving goes through the loop, so the flushes
            // genuinely coalesce queries from different callers (the
            // eager policy would let each submitter serve itself here).
            policy: FlushPolicy::Deadline,
            ..BatcherConfig::default()
        })
        .build()
        .expect("in-memory service");
    let client = service.client_for_state(Arc::clone(&state));

    // Direct reference: one predictor, one query at a time.
    let mut reference = Predictor::new();
    let expected: Vec<Vec<u64>> = (0..8)
        .map(|t| {
            samples
                .iter()
                .map(|s| {
                    reference
                        .predict_one(&state, s.scale_out + (t % 3) as f64, &s.props)
                        .to_bits()
                })
                .collect()
        })
        .collect();

    // 8 threads hammer one client (each its own clone), many rounds so
    // flushes interleave submissions from different callers.
    let got: Vec<Vec<u64>> = std::thread::scope(|scope| {
        (0..8)
            .map(|t| {
                let client = client.clone();
                let samples = &samples;
                scope.spawn(move || {
                    let mut bits = Vec::new();
                    for _round in 0..5 {
                        bits.clear();
                        for s in samples.iter() {
                            let pred = client
                                .predict(s.scale_out + (t % 3) as f64, &s.props)
                                .expect("service is live");
                            bits.push(pred.to_bits());
                        }
                    }
                    bits
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("submitter thread"))
            .collect()
    });

    for (t, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(g, e, "thread {t}: micro-batched bits drifted from direct");
    }
    let stats = client.batcher_stats();
    assert_eq!(stats.queries, 8 * 5 * samples.len() as u64);
    assert!(stats.batches > 0);
    assert!(
        stats.batches < stats.queries,
        "cross-caller coalescing must form multi-query batches \
         ({} batches for {} queries)",
        stats.batches,
        stats.queries
    );
}

#[test]
fn capacity_flush_fires_when_the_batch_fills() {
    let (state, samples) = pretrained();
    let service = Service::builder()
        .batcher(BatcherConfig {
            max_batch: 2,
            // Far beyond the test timeout: under the strict deadline
            // policy only a capacity flush can release the two parked
            // submitters quickly.
            max_wait: Duration::from_secs(30),
            policy: FlushPolicy::Deadline,
            ..BatcherConfig::default()
        })
        .build()
        .expect("in-memory service");
    let client = service.client_for_state(state);

    let preds: Vec<f64> = std::thread::scope(|scope| {
        (0..2)
            .map(|t| {
                let client = client.clone();
                let props = &samples[t].props;
                scope.spawn(move || client.predict(4.0 + t as f64, props).expect("live"))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("submitter"))
            .collect()
    });
    assert!(preds.iter().all(|p| p.is_finite()));
    let stats = client.batcher_stats();
    assert_eq!(stats.queries, 2);
    assert_eq!(stats.capacity_flushes, 1, "the pair must flush on capacity");
    assert_eq!(stats.timeout_flushes, 0);
}

#[test]
fn timeout_flush_fires_for_a_lone_query() {
    let (state, samples) = pretrained();
    let service = Service::builder()
        .batcher(BatcherConfig {
            max_batch: 1024,
            max_wait: Duration::from_millis(2),
            policy: FlushPolicy::Deadline,
            ..BatcherConfig::default()
        })
        .build()
        .expect("in-memory service");
    let client = service.client_for_state(state);
    let pred = client.predict(6.0, &samples[0].props).expect("live");
    assert!(pred.is_finite());
    let stats = client.batcher_stats();
    assert_eq!(stats.queries, 1);
    assert_eq!(stats.batches, 1);
    assert_eq!(
        stats.timeout_flushes, 1,
        "a lone query can only leave via the timeout flush"
    );
    assert_eq!(stats.capacity_flushes, 0);
}

#[test]
fn eager_policy_quiesce_flushes_a_lone_query_quickly() {
    let (state, samples) = pretrained();
    let service = Service::builder()
        .batcher(BatcherConfig {
            max_batch: 1024,
            // An hour-long deadline: only the quiescence flush can serve
            // a lone query promptly under the eager policy.
            max_wait: Duration::from_secs(3600),
            policy: FlushPolicy::Eager,
            ..BatcherConfig::default()
        })
        .build()
        .expect("in-memory service");
    let client = service.client_for_state(state);
    let start = std::time::Instant::now();
    let pred = client.predict(6.0, &samples[0].props).expect("live");
    assert!(pred.is_finite());
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "eager flush must not wait out the deadline"
    );
    let stats = client.batcher_stats();
    assert_eq!(
        stats.quiesce_flushes + stats.assist_flushes,
        1,
        "the lone query leaves via the quiesce flush (loop) or the \
         assist flush (submitter), never the deadline: {stats:?}"
    );
    assert_eq!(stats.capacity_flushes, 0);
    assert_eq!(stats.timeout_flushes, 0);
}

#[test]
fn batched_entry_points_agree_with_micro_batched_singles() {
    let (state, samples) = pretrained();
    let service = Service::builder()
        .batcher(BatcherConfig {
            max_batch: 4,
            max_wait: Duration::ZERO,
            ..BatcherConfig::default()
        })
        .build()
        .expect("in-memory service");
    let client = service.client_for_state(Arc::clone(&state));
    let props = &samples[0].props;
    let xs: Vec<f64> = (2..=12).map(f64::from).collect();
    let sweep = client.predict_sweep(props, &xs);
    for (&x, &swept) in xs.iter().zip(&sweep) {
        let single = client.predict(x, props).expect("live");
        assert_eq!(
            single.to_bits(),
            swept.to_bits(),
            "sweep and micro-batched single must agree at x={x}"
        );
    }
}

#[test]
fn service_serves_the_full_recall_finetune_workflow() {
    let samples = corpus();
    let dir = std::env::temp_dir().join(format!("bellamy-serve-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let key = ModelKey::new("grep", "serve-workflow", &BellamyConfig::default());
    let quick = PretrainConfig {
        epochs: 5,
        ..PretrainConfig::default()
    };
    let ft = FinetuneConfig {
        max_epochs: 10,
        patience: 5,
        ..FinetuneConfig::default()
    };

    {
        let service = Service::builder()
            .hub_dir(&dir)
            .finetune_policy(FinetunePolicy {
                config: ft,
                strategy: ReuseStrategy::PartialUnfreeze,
                seed: 3,
            })
            .build()
            .expect("disk-backed service");
        let general = service
            .client_or_pretrain(&key, &quick, 3, || samples.clone())
            .expect("pretrain on miss");
        assert_eq!(service.stats().pretrains, 1);
        assert_eq!(general.registry_key(), Some(key.id()));

        // Policy-driven fine-tuning derives a provenance-carrying child.
        let tuned = service
            .finetuned_client(&key, "serve-ctx", &samples[..4])
            .expect("fine-tune");
        assert_eq!(tuned.state().parent_key(), Some(key.id()));
        // Identical request: served from the descendant LRU.
        let again = service
            .finetuned_client(&key, "serve-ctx", &samples[..4])
            .expect("lru hit");
        assert!(Arc::ptr_eq(tuned.state(), again.state()));
        assert_eq!(service.hub().stats().finetunes, 1);
    }

    // A second service over the same directory recalls without training —
    // the cross-process reuse story through the front door.
    let service = Service::builder().hub_dir(&dir).build().expect("reopen");
    let recalled = service.client(&key).expect("disk recall");
    assert_eq!(service.stats().disk_recalls, 1);
    assert_eq!(service.stats().pretrains, 0);
    let p = recalled.predict(6.0, &samples[0].props).expect("serve");
    assert!(p.is_finite());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unified_error_type_spans_the_layers() {
    let service = Service::in_memory();
    let key = ModelKey::new("sgd", "no-such-model", &BellamyConfig::default());
    // Hub errors surface through the service as BellamyError::Hub.
    let err = service.client(&key).unwrap_err();
    assert!(matches!(err, BellamyError::Hub(_)));
    assert!(err.to_string().contains("no model registered"));
    // Predict errors convert losslessly.
    let unfitted = Bellamy::new(BellamyConfig::default(), 0);
    let err: BellamyError = unfitted.snapshot().unwrap_err().into();
    assert!(matches!(err, BellamyError::Predict(_)));
}
