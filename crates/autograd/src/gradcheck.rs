//! Numerical gradient checking.
//!
//! Every analytic backward rule in this workspace is validated against
//! central finite differences. The checker re-runs a user-supplied closure
//! that builds a fresh tape from perturbed leaf values, so it works for any
//! composite graph — including the full Bellamy loss.

use crate::tape::{NodeId, Tape};
use bellamy_linalg::Matrix;

/// Outcome of a gradient check for a single leaf.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric entries.
    pub max_abs_error: f64,
    /// Largest relative difference (guarded against tiny denominators).
    pub max_rel_error: f64,
}

/// Compares analytic gradients with central finite differences.
///
/// `build` receives the leaf values and must construct a tape, returning the
/// tape, the ids assigned to each leaf (in order), and the scalar output id.
/// Returns one report per leaf.
///
/// The default step `h = 1e-5` balances truncation against rounding error in
/// `f64`; losses here are smooth except at isolated points (SELU kink at 0,
/// Huber transition), which the caller should avoid hitting exactly.
pub fn check_gradients(
    leaves: &[Matrix],
    build: impl Fn(&[Matrix]) -> (Tape, Vec<NodeId>, NodeId),
) -> Vec<GradCheckReport> {
    const H: f64 = 1e-5;

    let (tape, ids, out) = build(leaves);
    assert_eq!(ids.len(), leaves.len(), "build must return one id per leaf");
    let grads = tape.backward(out);

    let mut reports = Vec::with_capacity(leaves.len());
    for (leaf_idx, leaf) in leaves.iter().enumerate() {
        let analytic = grads.get_or_zeros(ids[leaf_idx], leaf.shape());
        let mut max_abs = 0.0f64;
        let mut max_rel = 0.0f64;
        for elem in 0..leaf.len() {
            let mut plus = leaves.to_vec();
            plus[leaf_idx].as_mut_slice()[elem] += H;
            let (tp, _, op) = build(&plus);
            let fp = tp.value(op)[(0, 0)];

            let mut minus = leaves.to_vec();
            minus[leaf_idx].as_mut_slice()[elem] -= H;
            let (tm, _, om) = build(&minus);
            let fm = tm.value(om)[(0, 0)];

            let numeric = (fp - fm) / (2.0 * H);
            let a = analytic.as_slice()[elem];
            let abs = (numeric - a).abs();
            let rel = abs / numeric.abs().max(a.abs()).max(1e-8);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
        reports.push(GradCheckReport {
            max_abs_error: max_abs,
            max_rel_error: max_rel,
        });
    }
    reports
}

/// Asserts that every leaf passes the gradient check within `tol` relative
/// error. Panics with a per-leaf report otherwise.
pub fn assert_gradients_close(
    leaves: &[Matrix],
    tol: f64,
    build: impl Fn(&[Matrix]) -> (Tape, Vec<NodeId>, NodeId),
) {
    let reports = check_gradients(leaves, build);
    for (i, r) in reports.iter().enumerate() {
        assert!(
            r.max_rel_error < tol || r.max_abs_error < tol,
            "gradient check failed for leaf {i}: {r:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Activation;

    /// Deterministic pseudo-random matrix that avoids activation kinks.
    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            // Keep away from 0 so SELU/Huber kinks don't break the finite
            // difference comparison.
            v + 0.1 * v.signum() + if v == 0.0 { 0.17 } else { 0.0 }
        })
    }

    #[test]
    fn linear_layer_gradcheck() {
        let x = pseudo_random(4, 3, 1);
        let w = pseudo_random(3, 2, 2);
        let b = pseudo_random(1, 2, 3);
        assert_gradients_close(&[x, w, b], 1e-5, |leaves| {
            let mut tape = Tape::new();
            let x = tape.leaf(leaves[0].clone());
            let w = tape.leaf(leaves[1].clone());
            let b = tape.leaf(leaves[2].clone());
            let xw = tape.matmul(x, w);
            let y = tape.add_bias(xw, b);
            let out = tape.mean(y);
            (tape, vec![x, w, b], out)
        });
    }

    #[test]
    fn selu_mlp_gradcheck() {
        let x = pseudo_random(5, 3, 10);
        let w1 = pseudo_random(3, 8, 11);
        let w2 = pseudo_random(8, 2, 12);
        let target = pseudo_random(5, 2, 13);
        assert_gradients_close(&[x, w1, w2], 1e-4, |leaves| {
            let mut tape = Tape::new();
            let x = tape.leaf(leaves[0].clone());
            let w1 = tape.leaf(leaves[1].clone());
            let w2 = tape.leaf(leaves[2].clone());
            let h = tape.matmul(x, w1);
            let h = tape.activate(h, Activation::Selu);
            let y = tape.matmul(h, w2);
            let y = tape.activate(y, Activation::Selu);
            let out = tape.huber_loss(y, &target, 1.0);
            (tape, vec![x, w1, w2], out)
        });
    }

    #[test]
    fn tanh_autoencoder_gradcheck() {
        // The reconstruction target is the (constant) input `p`, so only the
        // encoder/decoder weights are checked — perturbing `p` would also
        // move the target, which the analytic gradient rightly ignores.
        let p = pseudo_random(2, 6, 20);
        let we = pseudo_random(6, 3, 21);
        let wd = pseudo_random(3, 6, 22);
        assert_gradients_close(&[we, wd], 1e-4, move |leaves| {
            let mut tape = Tape::new();
            let p_id = tape.leaf(p.clone());
            let we = tape.leaf(leaves[0].clone());
            let wd = tape.leaf(leaves[1].clone());
            let code = tape.matmul(p_id, we);
            let code = tape.activate(code, Activation::Selu);
            let rec = tape.matmul(code, wd);
            let rec = tape.activate(rec, Activation::Tanh);
            let out = tape.mse_loss(rec, &p);
            (tape, vec![we, wd], out)
        });
    }

    #[test]
    fn concat_and_mean_of_nodes_gradcheck() {
        let a = pseudo_random(3, 2, 30);
        let b = pseudo_random(3, 2, 31);
        let c = pseudo_random(3, 2, 32);
        let w = pseudo_random(4, 1, 33);
        assert_gradients_close(&[a, b, c, w], 1e-5, |leaves| {
            let mut tape = Tape::new();
            let a = tape.leaf(leaves[0].clone());
            let b = tape.leaf(leaves[1].clone());
            let c = tape.leaf(leaves[2].clone());
            let w = tape.leaf(leaves[3].clone());
            let opt = tape.mean_of_nodes(&[b, c]);
            let r = tape.concat_cols(&[a, opt]);
            let y = tape.matmul(r, w);
            let out = tape.mean(y);
            (tape, vec![a, b, c, w], out)
        });
    }

    #[test]
    fn joint_loss_gradcheck() {
        // Huber + MSE combined, mirroring Bellamy's pre-training objective.
        let x = pseudo_random(4, 3, 40);
        let w = pseudo_random(3, 1, 41);
        let t1 = pseudo_random(4, 1, 42);
        let t2 = pseudo_random(4, 3, 43);
        assert_gradients_close(&[x.clone(), w], 1e-4, move |leaves| {
            let mut tape = Tape::new();
            let x_id = tape.leaf(leaves[0].clone());
            let w_id = tape.leaf(leaves[1].clone());
            let y = tape.matmul(x_id, w_id);
            let l1 = tape.huber_loss(y, &t1, 1.0);
            let l2 = tape.mse_loss(x_id, &t2);
            let out = tape.add(l1, l2);
            (tape, vec![x_id, w_id], out)
        });
    }

    #[test]
    fn scale_sub_mul_gradcheck() {
        let a = pseudo_random(3, 3, 50);
        let b = pseudo_random(3, 3, 51);
        assert_gradients_close(&[a, b], 1e-5, |leaves| {
            let mut tape = Tape::new();
            let a = tape.leaf(leaves[0].clone());
            let b = tape.leaf(leaves[1].clone());
            let d = tape.sub(a, b);
            let p = tape.mul(d, a);
            let s = tape.scale(p, 0.37);
            let out = tape.sum(s);
            (tape, vec![a, b], out)
        });
    }

    #[test]
    fn slice_cols_gradcheck() {
        let x = pseudo_random(2, 5, 60);
        assert_gradients_close(&[x], 1e-5, |leaves| {
            let mut tape = Tape::new();
            let x = tape.leaf(leaves[0].clone());
            let s = tape.slice_cols(x, 1, 4);
            let a = tape.activate(s, Activation::Tanh);
            let out = tape.mean(a);
            (tape, vec![x], out)
        });
    }
}
