//! Scalar activation functions and their derivatives.
//!
//! The Bellamy prototype uses SELU everywhere except the decoder output,
//! which is tanh (§IV-A of the paper). The constants below are the exact
//! values from Klambauer et al., *Self-Normalizing Neural Networks* (2017).

/// SELU scale constant λ.
pub const SELU_LAMBDA: f64 = 1.0507009873554805;
/// SELU alpha constant α.
pub const SELU_ALPHA: f64 = 1.6732632423543772;

/// The fixed point that alpha-dropout pushes dropped activations towards:
/// `-λ·α`, the limit of SELU as its input goes to negative infinity.
pub const SELU_ALPHA_PRIME: f64 = -SELU_LAMBDA * SELU_ALPHA;

/// An elementwise activation with a closed-form derivative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity (no-op); useful for ablations and the final linear output.
    Identity,
    /// Scaled exponential linear unit.
    Selu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    /// Applies the activation to a scalar.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Selu => {
                if x > 0.0 {
                    SELU_LAMBDA * x
                } else {
                    SELU_LAMBDA * SELU_ALPHA * (x.exp() - 1.0)
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Relu => x.max(0.0),
        }
    }

    /// Derivative of the activation, expressed in terms of the *input* `x`.
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Selu => {
                if x > 0.0 {
                    SELU_LAMBDA
                } else {
                    SELU_LAMBDA * SELU_ALPHA * x.exp()
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Human-readable name, used in checkpoint metadata.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Identity => "identity",
            Activation::Selu => "selu",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
            Activation::Relu => "relu",
        }
    }

    /// Parses the name written by [`Activation::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "identity" => Some(Activation::Identity),
            "selu" => Some(Activation::Selu),
            "tanh" => Some(Activation::Tanh),
            "sigmoid" => Some(Activation::Sigmoid),
            "relu" => Some(Activation::Relu),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACTS: [Activation; 5] = [
        Activation::Identity,
        Activation::Selu,
        Activation::Tanh,
        Activation::Sigmoid,
        Activation::Relu,
    ];

    #[test]
    fn selu_constants_match_paper() {
        assert!((SELU_LAMBDA - 1.0507).abs() < 1e-4);
        assert!((SELU_ALPHA - 1.6733).abs() < 1e-4);
        assert!((SELU_ALPHA_PRIME + 1.7581).abs() < 1e-4);
    }

    #[test]
    fn selu_is_continuous_at_zero() {
        let eps = 1e-9;
        let left = Activation::Selu.apply(-eps);
        let right = Activation::Selu.apply(eps);
        assert!((left - right).abs() < 1e-7);
        assert_eq!(Activation::Selu.apply(0.0), 0.0);
    }

    #[test]
    fn selu_positive_branch_is_scaled_identity() {
        for x in [0.1, 1.0, 3.7] {
            assert!((Activation::Selu.apply(x) - SELU_LAMBDA * x).abs() < 1e-12);
        }
    }

    #[test]
    fn selu_saturates_at_alpha_prime() {
        assert!((Activation::Selu.apply(-40.0) - SELU_ALPHA_PRIME).abs() < 1e-9);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in ACTS {
            for x in [-2.3, -0.7, -0.1, 0.2, 0.9, 2.5] {
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn tanh_bounded() {
        assert!(Activation::Tanh.apply(50.0) <= 1.0);
        assert!(Activation::Tanh.apply(-50.0) >= -1.0);
    }

    #[test]
    fn names_round_trip() {
        for act in ACTS {
            assert_eq!(Activation::from_name(act.name()), Some(act));
        }
        assert_eq!(Activation::from_name("bogus"), None);
    }
}
