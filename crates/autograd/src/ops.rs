//! Scalar activation functions and their derivatives.
//!
//! The Bellamy prototype uses SELU everywhere except the decoder output,
//! which is tanh (§IV-A of the paper). The constants below are the exact
//! values from Klambauer et al., *Self-Normalizing Neural Networks* (2017).

/// SELU scale constant λ.
pub const SELU_LAMBDA: f64 = 1.0507009873554805;
/// SELU alpha constant α.
pub const SELU_ALPHA: f64 = 1.6732632423543772;

/// The fixed point that alpha-dropout pushes dropped activations towards:
/// `-λ·α`, the limit of SELU as its input goes to negative infinity.
pub const SELU_ALPHA_PRIME: f64 = -SELU_LAMBDA * SELU_ALPHA;

// Shared constants of the Cephes-style exp/tanh cores. Module-level so the
// lane-parallel kernels in [`crate::simd`] evaluate the *same* polynomial
// with the same coefficients — the bit-identity of the SIMD activations
// depends on it.
pub(crate) const EXP_LOG2E: f64 = std::f64::consts::LOG2_E;
pub(crate) const EXP_C1: f64 = 6.931_457_519_531_25e-1;
pub(crate) const EXP_C2: f64 = 1.428_606_820_309_417_2e-6;
pub(crate) const EXP_P: [f64; 3] = [
    1.261_771_930_748_105_9e-4,
    3.029_944_077_074_419_6e-2,
    9.999_999_999_999_999e-1,
];
pub(crate) const EXP_Q: [f64; 4] = [
    3.001_985_051_386_644_6e-6,
    2.524_483_403_496_841e-3,
    2.272_655_482_081_550_3e-1,
    2.0,
];
/// Round-to-nearest magic constant, `1.5 * 2^52`.
pub(crate) const EXP_MAGIC: f64 = 6_755_399_441_055_744.0;

/// Polynomial `exp` after Cephes' `exp.c` (the algorithm Eigen and SLEEF
/// vectorize): Cody–Waite range reduction to `[-ln2/2, ln2/2]`, a [2/3]
/// Padé approximant, and an exponent-bit reconstruction. Accurate to ~2 ulp
/// across the finite range, and — unlike a libm call — fully inlineable, so
/// the elementwise activation loops stay open to the optimizer. The decoder
/// alone evaluates tens of thousands of these per training step.
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    if !(-708.0..=708.0).contains(&x) {
        // Overflow/underflow/NaN edges: defer to libm (rare).
        return x.exp();
    }
    fast_exp_core(x)
}

/// The branch-free polynomial core of [`fast_exp`]: valid only for
/// `x ∈ [-708, 708]` (callers clamp), which is what lets the slice kernels
/// below stay free of per-element range branches and auto-vectorize.
#[inline(always)]
pub(crate) fn fast_exp_core(x: f64) -> f64 {
    const LOG2E: f64 = EXP_LOG2E;
    const C1: f64 = EXP_C1;
    const C2: f64 = EXP_C2;
    const P: [f64; 3] = EXP_P;
    const Q: [f64; 4] = EXP_Q;
    // Round-to-nearest via the 2^52 magic constant — `f64::floor` would be
    // a libm call on baseline x86-64 and dominate the whole kernel.
    const MAGIC: f64 = EXP_MAGIC; // 1.5 * 2^52
    let t = LOG2E * x + MAGIC;
    let n = t - MAGIC;
    let r = x - n * C1 - n * C2;
    let rr = r * r;
    let p = r * ((P[0] * rr + P[1]) * rr + P[2]);
    let q = ((Q[0] * rr + Q[1]) * rr + Q[2]) * rr + Q[3];
    let e = 1.0 + 2.0 * p / (q - p);
    // 2^n straight from the magic-rounded value's mantissa bits (which hold
    // 2^51 + n): integer-only, no f64→i64 conversion in the hot loop.
    e * f64::from_bits(
        (t.to_bits() & ((1u64 << 52) - 1))
            .wrapping_sub(1 << 51)
            .wrapping_add(1023)
            << 52,
    )
}

/// In-place `exp` over a slice. The per-element range check of [`fast_exp`]
/// becomes a clamp, so the loop body is branch-free and vectorizes.
/// Bit-identical to `fast_exp` per element on `[-708, 708]`; outside it the
/// result saturates to `exp(±708)` (≈ 3.3e-308 / 3.0e+307) instead of
/// 0/∞ — callers that care about the extreme tails use the scalar.
/// NaN propagates.
///
/// When the SIMD kernel backend is active (see
/// [`bellamy_linalg::kernels`]) the loop runs four (AVX2) or two (NEON)
/// lanes at a time — still bit-identical, see [`crate::simd`].
pub fn fast_exp_slice_in_place(xs: &mut [f64]) {
    if crate::simd::dispatch_exp_slice(xs) {
        return;
    }
    fast_exp_slice_scalar(xs);
}

/// Scalar loop body of [`fast_exp_slice_in_place`] (always available; also
/// handles the SIMD path's ragged tail).
pub(crate) fn fast_exp_slice_scalar(xs: &mut [f64]) {
    for x in xs.iter_mut() {
        *x = fast_exp_core(x.clamp(-708.0, 708.0));
    }
}

/// In-place `tanh` over a slice; [`fast_tanh`] is already branch-free, so
/// this is the straightforward vectorizable loop (lane-parallel under the
/// SIMD backend). Bit-identical to `fast_tanh` per element, NaN propagates.
pub fn fast_tanh_slice_in_place(xs: &mut [f64]) {
    if crate::simd::dispatch_tanh_slice(xs) {
        return;
    }
    fast_tanh_slice_scalar(xs);
}

/// Scalar loop body of [`fast_tanh_slice_in_place`] (always available; also
/// handles the SIMD path's ragged tail).
pub(crate) fn fast_tanh_slice_scalar(xs: &mut [f64]) {
    for x in xs.iter_mut() {
        *x = fast_tanh(*x);
    }
}

/// In-place SELU over a slice, bit-identical to
/// `Activation::Selu.apply` per element: the negative branch clamps its
/// argument into the polynomial core's domain (for `x ≤ -37.7` the factor
/// `e^x - 1` is exactly `-1.0` in f64 either way) and the positive branch
/// is a select, so the loop body has no branches. NaN propagates (clamp
/// keeps NaN, and NaN fails the `> 0` select into the NaN branch).
/// Lane-parallel under the SIMD backend.
fn selu_slice_in_place(xs: &mut [f64]) {
    if crate::simd::dispatch_selu_slice(xs) {
        return;
    }
    selu_slice_scalar(xs);
}

/// Scalar loop body of the SELU slice kernel (always available; also
/// handles the SIMD path's ragged tail).
pub(crate) fn selu_slice_scalar(xs: &mut [f64]) {
    for x in xs.iter_mut() {
        let v = *x;
        let e = fast_exp_core(v.clamp(-708.0, 0.0));
        let neg = SELU_LAMBDA * SELU_ALPHA * (e - 1.0);
        *x = if v > 0.0 { SELU_LAMBDA * v } else { neg };
    }
}

/// `tanh` via the same Padé `exp` core as [`fast_exp`], algebraically fused
/// so the whole function costs a **single** division:
/// with `e^z = 2^n (q+p)/(q-p)` for `z = -2|x|`,
/// `tanh(|x|) = (1 - e^z)/(1 + e^z) = ((q-p) - 2^n(q+p)) / ((q-p) + 2^n(q+p))`.
/// Agrees with libm tanh to ~1e-15 relative error at a fraction of the cost.
#[inline]
pub fn fast_tanh(x: f64) -> f64 {
    const LOG2E: f64 = EXP_LOG2E;
    const C1: f64 = EXP_C1;
    const C2: f64 = EXP_C2;
    const P: [f64; 3] = EXP_P;
    const Q: [f64; 4] = EXP_Q;
    // Branch-free body (NaN resolved by one final select): saturate the
    // argument instead of early-returning — at z = -40, e^z vanishes in f64
    // and the formula yields exactly ±1.
    let z = (-2.0 * x.abs()).max(-40.0);
    const MAGIC: f64 = EXP_MAGIC; // 1.5 * 2^52
    let t = LOG2E * z + MAGIC;
    let n = t - MAGIC;
    let r = z - n * C1 - n * C2;
    let rr = r * r;
    let p = r * ((P[0] * rr + P[1]) * rr + P[2]);
    let q = ((Q[0] * rr + Q[1]) * rr + Q[2]) * rr + Q[3];
    // 2^n from the magic-rounded value's mantissa bits (n ∈ [-58, 0], so
    // the low bits of `t` hold 2^51 + n): integer-only, no f64→i64 cast.
    let scale = f64::from_bits(
        (t.to_bits() & ((1u64 << 52) - 1))
            .wrapping_sub(1 << 51)
            .wrapping_add(1023)
            << 52,
    );
    let (den, num) = (q - p, scale * (q + p));
    let y = ((den - num) / (den + num)).copysign(x);
    if x.is_nan() {
        x
    } else {
        y
    }
}

/// An elementwise activation with a closed-form derivative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity (no-op); useful for ablations and the final linear output.
    Identity,
    /// Scaled exponential linear unit.
    Selu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    /// Applies the activation to a scalar.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Selu => {
                if x > 0.0 {
                    SELU_LAMBDA * x
                } else {
                    SELU_LAMBDA * SELU_ALPHA * (fast_exp(x) - 1.0)
                }
            }
            Activation::Tanh => fast_tanh(x),
            Activation::Sigmoid => 1.0 / (1.0 + fast_exp(-x)),
            Activation::Relu => x.max(0.0),
        }
    }

    /// Applies the activation to a whole slice in place, routing through the
    /// branch-free slice kernels so the elementwise loops vectorize instead
    /// of paying a per-scalar range branch. Bit-identical to mapping
    /// [`Activation::apply`] over the slice (including NaN propagation).
    #[inline]
    pub fn apply_slice_in_place(self, xs: &mut [f64]) {
        match self {
            Activation::Identity => {}
            Activation::Selu => selu_slice_in_place(xs),
            Activation::Tanh => fast_tanh_slice_in_place(xs),
            Activation::Sigmoid | Activation::Relu => {
                for x in xs.iter_mut() {
                    *x = self.apply(*x);
                }
            }
        }
    }

    /// The activation exactly as the seed implementation computed it, on
    /// libm scalars. Kept (together with
    /// [`Activation::derivative_reference`]) so the train-step benchmark
    /// can measure the original math as its baseline.
    #[doc(hidden)]
    #[inline]
    pub fn apply_reference(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Selu => {
                if x > 0.0 {
                    SELU_LAMBDA * x
                } else {
                    SELU_LAMBDA * SELU_ALPHA * (x.exp() - 1.0)
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Relu => x.max(0.0),
        }
    }

    /// The derivative exactly as the seed implementation computed it:
    /// re-deriving the activation from the *input* with libm scalars.
    #[doc(hidden)]
    #[inline]
    pub fn derivative_reference(self, x: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Selu => {
                if x > 0.0 {
                    SELU_LAMBDA
                } else {
                    SELU_LAMBDA * SELU_ALPHA * x.exp()
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Derivative of the activation, expressed in terms of the *input* `x`.
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        self.derivative_from(x, self.apply(x))
    }

    /// Derivative expressed in terms of the input `x` *and* the already
    /// computed output `y = apply(x)`.
    ///
    /// Every activation here admits a transcendental-free form given `y`
    /// (e.g. `tanh' = 1 - y²`, `selu'|_{x<0} = y + λα`), so the backward
    /// pass — which has the forward value saved on the tape — pays no
    /// `exp`/`tanh` at all.
    #[inline]
    pub fn derivative_from(self, x: f64, y: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Selu => {
                if x > 0.0 {
                    SELU_LAMBDA
                } else {
                    // y = λα(eˣ - 1)  ⇒  λα·eˣ = y + λα.
                    y + SELU_LAMBDA * SELU_ALPHA
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Derivative expressed in terms of the *output* `y = apply(x)` alone —
    /// what the fused linear op uses, since it never materializes the
    /// pre-activation. Bit-identical to
    /// [`Activation::derivative_from`] for every activation here: the
    /// input-sign branches of SELU and ReLU are recoverable from the output
    /// sign (`selu(x) > 0 ⇔ x > 0`, and `relu(x) > 0 ⇔ x > 0` with the
    /// `x = 0` boundary landing on the same zero-derivative branch).
    #[inline]
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Selu => {
                if y > 0.0 {
                    SELU_LAMBDA
                } else {
                    y + SELU_LAMBDA * SELU_ALPHA
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Human-readable name, used in checkpoint metadata.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Identity => "identity",
            Activation::Selu => "selu",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
            Activation::Relu => "relu",
        }
    }

    /// Parses the name written by [`Activation::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "identity" => Some(Activation::Identity),
            "selu" => Some(Activation::Selu),
            "tanh" => Some(Activation::Tanh),
            "sigmoid" => Some(Activation::Sigmoid),
            "relu" => Some(Activation::Relu),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACTS: [Activation; 5] = [
        Activation::Identity,
        Activation::Selu,
        Activation::Tanh,
        Activation::Sigmoid,
        Activation::Relu,
    ];

    #[test]
    fn selu_constants_match_paper() {
        assert!((SELU_LAMBDA - 1.0507).abs() < 1e-4);
        assert!((SELU_ALPHA - 1.6733).abs() < 1e-4);
        assert!((SELU_ALPHA_PRIME + 1.7581).abs() < 1e-4);
    }

    #[test]
    fn selu_is_continuous_at_zero() {
        let eps = 1e-9;
        let left = Activation::Selu.apply(-eps);
        let right = Activation::Selu.apply(eps);
        assert!((left - right).abs() < 1e-7);
        assert_eq!(Activation::Selu.apply(0.0), 0.0);
    }

    #[test]
    fn selu_positive_branch_is_scaled_identity() {
        for x in [0.1, 1.0, 3.7] {
            assert!((Activation::Selu.apply(x) - SELU_LAMBDA * x).abs() < 1e-12);
        }
    }

    #[test]
    fn selu_saturates_at_alpha_prime() {
        assert!((Activation::Selu.apply(-40.0) - SELU_ALPHA_PRIME).abs() < 1e-9);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for act in ACTS {
            for x in [-2.3, -0.7, -0.1, 0.2, 0.9, 2.5] {
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn tanh_bounded() {
        assert!(Activation::Tanh.apply(50.0) <= 1.0);
        assert!(Activation::Tanh.apply(-50.0) >= -1.0);
    }

    #[test]
    fn fast_exp_matches_libm() {
        let mut x = -707.0;
        while x < 707.0 {
            let (fast, reference) = (fast_exp(x), x.exp());
            let rel = (fast - reference).abs() / reference.max(f64::MIN_POSITIVE);
            assert!(rel < 1e-13, "exp({x}): {fast} vs {reference} (rel {rel:e})");
            x += 0.37;
        }
        assert_eq!(fast_exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(fast_exp(f64::INFINITY), f64::INFINITY);
        assert!(fast_exp(f64::NAN).is_nan());
        assert_eq!(fast_exp(0.0), 1.0);
    }

    #[test]
    fn fast_tanh_matches_libm() {
        let mut x = -30.0;
        while x < 30.0 {
            let (fast, reference) = (fast_tanh(x), x.tanh());
            assert!(
                (fast - reference).abs() < 1e-14,
                "tanh({x}): {fast} vs {reference}"
            );
            x += 0.013;
        }
        assert!(fast_tanh(f64::NAN).is_nan());
        assert_eq!(fast_tanh(1e9), 1.0);
        assert_eq!(fast_tanh(-1e9), -1.0);
    }

    #[test]
    fn derivative_from_output_matches_reference() {
        for act in ACTS {
            for x in [-3.1, -0.9, -0.2, 0.0, 0.4, 1.7, 4.2] {
                let y = act.apply(x);
                let via_output = act.derivative_from(x, y);
                let reference = act.derivative_reference(x);
                assert!(
                    (via_output - reference).abs() < 1e-12,
                    "{act:?} at {x}: {via_output} vs {reference}"
                );
            }
        }
    }

    /// The bitwise slice-vs-scalar contract below holds on the **Exact**
    /// tiers only; under `BELLAMY_KERNEL=fma` the dispatched slice kernels
    /// deliberately fuse rounding steps and promise a ULP envelope instead
    /// (pinned by `tests/fma_ulp.rs`).
    fn fast_tier_active() -> bool {
        bellamy_linalg::kernels::active_backend() == bellamy_linalg::kernels::Backend::Fma
    }

    #[test]
    fn exp_slice_matches_scalar_bitwise_in_range() {
        if fast_tier_active() {
            return;
        }
        let xs: Vec<f64> = (-7080..=7080).map(|i| i as f64 * 0.1).collect();
        let mut slice = xs.clone();
        fast_exp_slice_in_place(&mut slice);
        for (&x, &s) in xs.iter().zip(slice.iter()) {
            assert_eq!(s.to_bits(), fast_exp(x).to_bits(), "exp({x})");
        }
        let mut nan = [f64::NAN];
        fast_exp_slice_in_place(&mut nan);
        assert!(nan[0].is_nan());
    }

    #[test]
    fn tanh_slice_matches_scalar_bitwise() {
        if fast_tier_active() {
            return;
        }
        let xs: Vec<f64> = (-4000..=4000).map(|i| i as f64 * 0.01).collect();
        let mut slice = xs.clone();
        fast_tanh_slice_in_place(&mut slice);
        for (&x, &s) in xs.iter().zip(slice.iter()) {
            assert_eq!(s.to_bits(), fast_tanh(x).to_bits(), "tanh({x})");
        }
    }

    #[test]
    fn apply_slice_matches_scalar_apply_bitwise() {
        if fast_tier_active() {
            return;
        }
        let xs: Vec<f64> = (-2000..=2000)
            .map(|i| i as f64 * 0.013)
            .chain([0.0, -0.0, 1e-300, -1e-300, -50.0, -800.0, 800.0])
            .collect();
        for act in ACTS {
            let mut slice = xs.clone();
            act.apply_slice_in_place(&mut slice);
            for (&x, &s) in xs.iter().zip(slice.iter()) {
                assert_eq!(
                    s.to_bits(),
                    act.apply(x).to_bits(),
                    "{act:?} at {x}: {s} vs {}",
                    act.apply(x)
                );
            }
        }
        // NaN handling matches the scalar path exactly (SELU/tanh/sigmoid
        // propagate NaN; ReLU's `max` maps it to 0 in both paths).
        for act in ACTS {
            let mut nan = [f64::NAN];
            act.apply_slice_in_place(&mut nan);
            let scalar = act.apply(f64::NAN);
            assert_eq!(
                nan[0].to_bits(),
                scalar.to_bits(),
                "{act:?} on NaN: slice {} vs scalar {scalar}",
                nan[0]
            );
        }
    }

    #[test]
    fn derivative_from_output_matches_derivative_from() {
        for act in ACTS {
            for x in [-40.0, -3.1, -0.9, -0.2, 0.0, 1e-12, 0.4, 1.7, 4.2, 40.0] {
                let y = act.apply(x);
                assert_eq!(
                    act.derivative_from_output(y).to_bits(),
                    act.derivative_from(x, y).to_bits(),
                    "{act:?} at x = {x}"
                );
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for act in ACTS {
            assert_eq!(Activation::from_name(act.name()), Some(act));
        }
        assert_eq!(Activation::from_name("bogus"), None);
    }
}
