//! Lane-parallel activation slice kernels (AVX2 / NEON).
//!
//! The same Cephes-style polynomial cores as [`crate::ops`], evaluated four
//! (`__m256d`) or two (`float64x2_t`) lanes at a time. **Bit-identical** to
//! the scalar slice kernels per element:
//!
//! - the polynomial coefficients are the shared `ops::EXP_*` constants and
//!   every arithmetic step mirrors the scalar expression tree exactly — no
//!   FMA contraction, no reassociation;
//! - the exponent reconstruction is the same integer bit-manipulation
//!   (`mantissa & mask`, wrapping sub/add, `<< 52`) on each lane;
//! - clamp/max/select use the lane operations whose NaN semantics match the
//!   scalar code: `clamp` keeps the NaN operand (x86 `min/max` return the
//!   second operand on NaN, so the constant goes first; NEON uses
//!   compare+select), `f64::max`'s NaN-ignoring behaviour maps to the same
//!   x86 operand ordering / NEON `vmaxnmq`, and the final `v > 0.0` /
//!   `is_nan` selects are explicit masks, exactly like the scalar branches.
//!
//! Ragged tails (`len % lanes != 0`) fall through to the scalar loops in
//! [`crate::ops`], which compute the identical values.
//!
//! The `dispatch_*` functions consult the process-wide
//! [`bellamy_linalg::kernels`] backend so the activation path flips together
//! with the matmul path (`BELLAMY_KERNEL` covers both). The `force_*`
//! functions ignore the backend selection and are meant for tests that pin
//! the SIMD path explicitly.
//!
//! # Fast tier (`Backend::Fma`)
//!
//! When the resolved backend is the FMA tier, `dispatch_*` routes to the
//! `force_*_slice_fma` kernels instead: the same polynomial cores with every
//! `a*b + c` step contracted to a fused multiply-add
//! (`_mm256_fmadd_pd`/`_mm256_fnmadd_pd`, `vfmaq_f64`/`vfmsq_f64`). These
//! are **not** bit-identical to the scalar cores — they carry the documented
//! ULP envelope of [`bellamy_linalg::kernels`]'s Fast tier (a few ULP on the
//! activation output; special values NaN/±inf/±0 still propagate
//! identically, because the clamp/select/sign steps are untouched). Ragged
//! tails still fall through to the exact scalar loops.

use bellamy_linalg::kernels::{active_backend, Backend};

/// Runs the vector exp slice kernel matching the active backend, if
/// supported. Returns `false` (slice untouched) otherwise.
#[inline]
pub fn dispatch_exp_slice(xs: &mut [f64]) -> bool {
    match active_backend() {
        Backend::Simd => force_exp_slice(xs),
        Backend::Fma => force_exp_slice_fma(xs),
        Backend::Scalar => false,
    }
}

/// Runs the vector tanh slice kernel matching the active backend, if
/// supported. Returns `false` (slice untouched) otherwise.
#[inline]
pub fn dispatch_tanh_slice(xs: &mut [f64]) -> bool {
    match active_backend() {
        Backend::Simd => force_tanh_slice(xs),
        Backend::Fma => force_tanh_slice_fma(xs),
        Backend::Scalar => false,
    }
}

/// Runs the vector SELU slice kernel matching the active backend, if
/// supported. Returns `false` (slice untouched) otherwise.
#[inline]
pub fn dispatch_selu_slice(xs: &mut [f64]) -> bool {
    match active_backend() {
        Backend::Simd => force_selu_slice(xs),
        Backend::Fma => force_selu_slice_fma(xs),
        Backend::Scalar => false,
    }
}

/// Runs the SIMD exp slice kernel whenever the CPU supports it, regardless
/// of `BELLAMY_KERNEL`. Returns `false` (slice untouched) when the CPU has
/// no supported vector unit. Bit-identical to
/// [`crate::ops::fast_exp_slice_in_place`].
pub fn force_exp_slice(xs: &mut [f64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 just detected.
            unsafe { avx2::exp_slice(xs) };
            return true;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        neon::exp_slice(xs);
        return true;
    }
    #[allow(unreachable_code)]
    {
        let _ = xs;
        false
    }
}

/// Runs the SIMD tanh slice kernel whenever the CPU supports it (see
/// [`force_exp_slice`]). Bit-identical to
/// [`crate::ops::fast_tanh_slice_in_place`].
pub fn force_tanh_slice(xs: &mut [f64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 just detected.
            unsafe { avx2::tanh_slice(xs) };
            return true;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        neon::tanh_slice(xs);
        return true;
    }
    #[allow(unreachable_code)]
    {
        let _ = xs;
        false
    }
}

/// Runs the SIMD SELU slice kernel whenever the CPU supports it (see
/// [`force_exp_slice`]). Bit-identical to the scalar SELU slice kernel
/// behind `Activation::Selu.apply_slice_in_place`.
pub fn force_selu_slice(xs: &mut [f64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 just detected.
            unsafe { avx2::selu_slice(xs) };
            return true;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        neon::selu_slice(xs);
        return true;
    }
    #[allow(unreachable_code)]
    {
        let _ = xs;
        false
    }
}

/// Runs the FMA-contracted exp slice kernel whenever the CPU supports it,
/// regardless of `BELLAMY_KERNEL`. Returns `false` (slice untouched) when
/// the CPU lacks FMA. **Fast tier**: a few ULP from the scalar core, same
/// special-value propagation.
pub fn force_exp_slice_fma(xs: &mut [f64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: AVX2 + FMA just detected.
            unsafe { avx2fma::exp_slice(xs) };
            return true;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        neonfma::exp_slice(xs);
        return true;
    }
    #[allow(unreachable_code)]
    {
        let _ = xs;
        false
    }
}

/// Runs the FMA-contracted tanh slice kernel whenever the CPU supports it
/// (see [`force_exp_slice_fma`]).
pub fn force_tanh_slice_fma(xs: &mut [f64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: AVX2 + FMA just detected.
            unsafe { avx2fma::tanh_slice(xs) };
            return true;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        neonfma::tanh_slice(xs);
        return true;
    }
    #[allow(unreachable_code)]
    {
        let _ = xs;
        false
    }
}

/// Runs the FMA-contracted SELU slice kernel whenever the CPU supports it
/// (see [`force_exp_slice_fma`]).
pub fn force_selu_slice_fma(xs: &mut [f64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: AVX2 + FMA just detected.
            unsafe { avx2fma::selu_slice(xs) };
            return true;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        neonfma::selu_slice(xs);
        return true;
    }
    #[allow(unreachable_code)]
    {
        let _ = xs;
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use crate::ops::{
        self, EXP_C1, EXP_C2, EXP_LOG2E, EXP_MAGIC, EXP_P, EXP_Q, SELU_ALPHA, SELU_LAMBDA,
    };
    use std::arch::x86_64::*;

    /// Four-lane [`ops::fast_exp_core`]: same Cody–Waite reduction, same
    /// [2/3] Padé, same magic-constant rounding and integer exponent
    /// reconstruction — per-lane bit-identical to the scalar.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn exp_core_pd(x: __m256d) -> __m256d {
        let magic = _mm256_set1_pd(EXP_MAGIC);
        let t = _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(EXP_LOG2E), x), magic);
        let n = _mm256_sub_pd(t, magic);
        // r = x - n*C1 - n*C2, left to right as the scalar parses it.
        let r = _mm256_sub_pd(
            _mm256_sub_pd(x, _mm256_mul_pd(n, _mm256_set1_pd(EXP_C1))),
            _mm256_mul_pd(n, _mm256_set1_pd(EXP_C2)),
        );
        let rr = _mm256_mul_pd(r, r);
        // p = r * ((P0*rr + P1)*rr + P2)
        let p = _mm256_mul_pd(
            r,
            _mm256_add_pd(
                _mm256_mul_pd(
                    _mm256_add_pd(
                        _mm256_mul_pd(_mm256_set1_pd(EXP_P[0]), rr),
                        _mm256_set1_pd(EXP_P[1]),
                    ),
                    rr,
                ),
                _mm256_set1_pd(EXP_P[2]),
            ),
        );
        // q = ((Q0*rr + Q1)*rr + Q2)*rr + Q3
        let q = _mm256_add_pd(
            _mm256_mul_pd(
                _mm256_add_pd(
                    _mm256_mul_pd(
                        _mm256_add_pd(
                            _mm256_mul_pd(_mm256_set1_pd(EXP_Q[0]), rr),
                            _mm256_set1_pd(EXP_Q[1]),
                        ),
                        rr,
                    ),
                    _mm256_set1_pd(EXP_Q[2]),
                ),
                rr,
            ),
            _mm256_set1_pd(EXP_Q[3]),
        );
        // e = 1 + 2p/(q - p)
        let e = _mm256_add_pd(
            _mm256_set1_pd(1.0),
            _mm256_div_pd(_mm256_mul_pd(_mm256_set1_pd(2.0), p), _mm256_sub_pd(q, p)),
        );
        // 2^n from the magic-rounded mantissa bits, per lane:
        // ((bits & (2^52 - 1)) - 2^51 + 1023) << 52.
        let bits = _mm256_castpd_si256(t);
        let mant = _mm256_and_si256(bits, _mm256_set1_epi64x(((1u64 << 52) - 1) as i64));
        let expn = _mm256_add_epi64(
            _mm256_sub_epi64(mant, _mm256_set1_epi64x(1i64 << 51)),
            _mm256_set1_epi64x(1023),
        );
        let scale = _mm256_castsi256_pd(_mm256_slli_epi64(expn, 52));
        _mm256_mul_pd(e, scale)
    }

    /// Rust-`clamp`-semantics lane clamp (NaN passes through with payload):
    /// the constant goes *first* in x86 `min/max`, which return the second
    /// operand on NaN.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn clamp_pd(v: __m256d, lo: f64, hi: f64) -> __m256d {
        _mm256_min_pd(_mm256_set1_pd(hi), _mm256_max_pd(_mm256_set1_pd(lo), v))
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn exp_slice(xs: &mut [f64]) {
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(p.add(i));
            _mm256_storeu_pd(p.add(i), exp_core_pd(clamp_pd(v, -708.0, 708.0)));
            i += 4;
        }
        ops::fast_exp_slice_scalar(&mut xs[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn tanh_slice(xs: &mut [f64]) {
        let sign = _mm256_set1_pd(-0.0);
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let x = _mm256_loadu_pd(p.add(i));
            // z = max(-2|x|, -40): f64::max returns the other operand on
            // NaN; so does x86 max_pd when the NaN is the *first* operand.
            let absx = _mm256_andnot_pd(sign, x);
            let z = _mm256_max_pd(
                _mm256_mul_pd(_mm256_set1_pd(-2.0), absx),
                _mm256_set1_pd(-40.0),
            );
            let magic = _mm256_set1_pd(EXP_MAGIC);
            let t = _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(EXP_LOG2E), z), magic);
            let nn = _mm256_sub_pd(t, magic);
            let r = _mm256_sub_pd(
                _mm256_sub_pd(z, _mm256_mul_pd(nn, _mm256_set1_pd(EXP_C1))),
                _mm256_mul_pd(nn, _mm256_set1_pd(EXP_C2)),
            );
            let rr = _mm256_mul_pd(r, r);
            let pp = _mm256_mul_pd(
                r,
                _mm256_add_pd(
                    _mm256_mul_pd(
                        _mm256_add_pd(
                            _mm256_mul_pd(_mm256_set1_pd(EXP_P[0]), rr),
                            _mm256_set1_pd(EXP_P[1]),
                        ),
                        rr,
                    ),
                    _mm256_set1_pd(EXP_P[2]),
                ),
            );
            let q = _mm256_add_pd(
                _mm256_mul_pd(
                    _mm256_add_pd(
                        _mm256_mul_pd(
                            _mm256_add_pd(
                                _mm256_mul_pd(_mm256_set1_pd(EXP_Q[0]), rr),
                                _mm256_set1_pd(EXP_Q[1]),
                            ),
                            rr,
                        ),
                        _mm256_set1_pd(EXP_Q[2]),
                    ),
                    rr,
                ),
                _mm256_set1_pd(EXP_Q[3]),
            );
            let bits = _mm256_castpd_si256(t);
            let mant = _mm256_and_si256(bits, _mm256_set1_epi64x(((1u64 << 52) - 1) as i64));
            let expn = _mm256_add_epi64(
                _mm256_sub_epi64(mant, _mm256_set1_epi64x(1i64 << 51)),
                _mm256_set1_epi64x(1023),
            );
            let scale = _mm256_castsi256_pd(_mm256_slli_epi64(expn, 52));
            let den = _mm256_sub_pd(q, pp);
            let num = _mm256_mul_pd(scale, _mm256_add_pd(q, pp));
            let y = _mm256_div_pd(_mm256_sub_pd(den, num), _mm256_add_pd(den, num));
            // copysign(y, x), then the scalar's final NaN select: x if NaN.
            let signed = _mm256_or_pd(_mm256_andnot_pd(sign, y), _mm256_and_pd(sign, x));
            let is_nan = _mm256_cmp_pd(x, x, _CMP_UNORD_Q);
            _mm256_storeu_pd(p.add(i), _mm256_blendv_pd(signed, x, is_nan));
            i += 4;
        }
        ops::fast_tanh_slice_scalar(&mut xs[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn selu_slice(xs: &mut [f64]) {
        // λα computed exactly as the scalar's `SELU_LAMBDA * SELU_ALPHA *
        // (e - 1.0)` left-associated parse: (λ·α) is one rounded product.
        let lambda_alpha = _mm256_set1_pd(SELU_LAMBDA * SELU_ALPHA);
        let lambda = _mm256_set1_pd(SELU_LAMBDA);
        let zero = _mm256_setzero_pd();
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(p.add(i));
            let e = exp_core_pd(clamp_pd(v, -708.0, 0.0));
            let neg = _mm256_mul_pd(lambda_alpha, _mm256_sub_pd(e, _mm256_set1_pd(1.0)));
            let pos = _mm256_mul_pd(lambda, v);
            // v > 0.0 select; NaN compares false and lands in the negative
            // branch, exactly like the scalar `if`.
            let gt = _mm256_cmp_pd(v, zero, _CMP_GT_OQ);
            _mm256_storeu_pd(p.add(i), _mm256_blendv_pd(neg, pos, gt));
            i += 4;
        }
        ops::selu_slice_scalar(&mut xs[i..]);
    }
}

/// FMA-contracted activation cores — the Fast tier on `x86_64`. Same
/// Cody–Waite reduction, Padé ratio and integer exponent reconstruction as
/// [`avx2`], but every `a*b + c` pair fuses into one rounding
/// (`_mm256_fmadd_pd` / `_mm256_fnmadd_pd`). Clamp/select/sign steps are
/// byte-for-byte the exact kernels', so NaN/±inf/±0 propagation is
/// unchanged; only the polynomial arithmetic drifts, by a few ULP.
#[cfg(target_arch = "x86_64")]
mod avx2fma {
    use crate::ops::{
        self, EXP_C1, EXP_C2, EXP_LOG2E, EXP_MAGIC, EXP_P, EXP_Q, SELU_ALPHA, SELU_LAMBDA,
    };
    use std::arch::x86_64::*;

    /// Four-lane [`ops::fast_exp_core`] with fused steps: `t` fuses the
    /// log2e scale into the magic add, `r` uses two `fnmadd`s for the
    /// Cody–Waite subtraction, and both Padé halves are `fmadd` Horner
    /// chains.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn exp_core_pd(x: __m256d) -> __m256d {
        let magic = _mm256_set1_pd(EXP_MAGIC);
        let t = _mm256_fmadd_pd(_mm256_set1_pd(EXP_LOG2E), x, magic);
        let n = _mm256_sub_pd(t, magic);
        // r = x - n*C1 - n*C2, each subtraction fused.
        let r = _mm256_fnmadd_pd(
            n,
            _mm256_set1_pd(EXP_C2),
            _mm256_fnmadd_pd(n, _mm256_set1_pd(EXP_C1), x),
        );
        let rr = _mm256_mul_pd(r, r);
        // p = r * ((P0*rr + P1)*rr + P2), Horner steps fused.
        let p = _mm256_mul_pd(
            r,
            _mm256_fmadd_pd(
                _mm256_fmadd_pd(_mm256_set1_pd(EXP_P[0]), rr, _mm256_set1_pd(EXP_P[1])),
                rr,
                _mm256_set1_pd(EXP_P[2]),
            ),
        );
        // q = ((Q0*rr + Q1)*rr + Q2)*rr + Q3, Horner steps fused.
        let q = _mm256_fmadd_pd(
            _mm256_fmadd_pd(
                _mm256_fmadd_pd(_mm256_set1_pd(EXP_Q[0]), rr, _mm256_set1_pd(EXP_Q[1])),
                rr,
                _mm256_set1_pd(EXP_Q[2]),
            ),
            rr,
            _mm256_set1_pd(EXP_Q[3]),
        );
        // e = 1 + 2p/(q - p)
        let e = _mm256_add_pd(
            _mm256_set1_pd(1.0),
            _mm256_div_pd(_mm256_mul_pd(_mm256_set1_pd(2.0), p), _mm256_sub_pd(q, p)),
        );
        // 2^n reconstruction — integer ops, identical to the exact kernel.
        let bits = _mm256_castpd_si256(t);
        let mant = _mm256_and_si256(bits, _mm256_set1_epi64x(((1u64 << 52) - 1) as i64));
        let expn = _mm256_add_epi64(
            _mm256_sub_epi64(mant, _mm256_set1_epi64x(1i64 << 51)),
            _mm256_set1_epi64x(1023),
        );
        let scale = _mm256_castsi256_pd(_mm256_slli_epi64(expn, 52));
        _mm256_mul_pd(e, scale)
    }

    /// Rust-`clamp`-semantics lane clamp, as in the exact kernel.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn clamp_pd(v: __m256d, lo: f64, hi: f64) -> __m256d {
        _mm256_min_pd(_mm256_set1_pd(hi), _mm256_max_pd(_mm256_set1_pd(lo), v))
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn exp_slice(xs: &mut [f64]) {
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(p.add(i));
            _mm256_storeu_pd(p.add(i), exp_core_pd(clamp_pd(v, -708.0, 708.0)));
            i += 4;
        }
        ops::fast_exp_slice_scalar(&mut xs[i..]);
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn tanh_slice(xs: &mut [f64]) {
        let sign = _mm256_set1_pd(-0.0);
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let x = _mm256_loadu_pd(p.add(i));
            // z = max(-2|x|, -40): same NaN-operand ordering as the exact
            // kernel.
            let absx = _mm256_andnot_pd(sign, x);
            let z = _mm256_max_pd(
                _mm256_mul_pd(_mm256_set1_pd(-2.0), absx),
                _mm256_set1_pd(-40.0),
            );
            let magic = _mm256_set1_pd(EXP_MAGIC);
            let t = _mm256_fmadd_pd(_mm256_set1_pd(EXP_LOG2E), z, magic);
            let nn = _mm256_sub_pd(t, magic);
            let r = _mm256_fnmadd_pd(
                nn,
                _mm256_set1_pd(EXP_C2),
                _mm256_fnmadd_pd(nn, _mm256_set1_pd(EXP_C1), z),
            );
            let rr = _mm256_mul_pd(r, r);
            let pp = _mm256_mul_pd(
                r,
                _mm256_fmadd_pd(
                    _mm256_fmadd_pd(_mm256_set1_pd(EXP_P[0]), rr, _mm256_set1_pd(EXP_P[1])),
                    rr,
                    _mm256_set1_pd(EXP_P[2]),
                ),
            );
            let q = _mm256_fmadd_pd(
                _mm256_fmadd_pd(
                    _mm256_fmadd_pd(_mm256_set1_pd(EXP_Q[0]), rr, _mm256_set1_pd(EXP_Q[1])),
                    rr,
                    _mm256_set1_pd(EXP_Q[2]),
                ),
                rr,
                _mm256_set1_pd(EXP_Q[3]),
            );
            let bits = _mm256_castpd_si256(t);
            let mant = _mm256_and_si256(bits, _mm256_set1_epi64x(((1u64 << 52) - 1) as i64));
            let expn = _mm256_add_epi64(
                _mm256_sub_epi64(mant, _mm256_set1_epi64x(1i64 << 51)),
                _mm256_set1_epi64x(1023),
            );
            let scale = _mm256_castsi256_pd(_mm256_slli_epi64(expn, 52));
            let den = _mm256_sub_pd(q, pp);
            let num = _mm256_mul_pd(scale, _mm256_add_pd(q, pp));
            let y = _mm256_div_pd(_mm256_sub_pd(den, num), _mm256_add_pd(den, num));
            // copysign(y, x), then x where x is NaN — exact-kernel selects.
            let signed = _mm256_or_pd(_mm256_andnot_pd(sign, y), _mm256_and_pd(sign, x));
            let is_nan = _mm256_cmp_pd(x, x, _CMP_UNORD_Q);
            _mm256_storeu_pd(p.add(i), _mm256_blendv_pd(signed, x, is_nan));
            i += 4;
        }
        ops::fast_tanh_slice_scalar(&mut xs[i..]);
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn selu_slice(xs: &mut [f64]) {
        let lambda_alpha = _mm256_set1_pd(SELU_LAMBDA * SELU_ALPHA);
        let lambda = _mm256_set1_pd(SELU_LAMBDA);
        let zero = _mm256_setzero_pd();
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(p.add(i));
            let e = exp_core_pd(clamp_pd(v, -708.0, 0.0));
            // neg = λα·e − λα, fused (the exact kernel computes
            // λα·(e − 1)); both are within one rounding of each other.
            let neg = _mm256_fmsub_pd(lambda_alpha, e, lambda_alpha);
            let pos = _mm256_mul_pd(lambda, v);
            let gt = _mm256_cmp_pd(v, zero, _CMP_GT_OQ);
            _mm256_storeu_pd(p.add(i), _mm256_blendv_pd(neg, pos, gt));
            i += 4;
        }
        ops::selu_slice_scalar(&mut xs[i..]);
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use crate::ops::{
        self, EXP_C1, EXP_C2, EXP_LOG2E, EXP_MAGIC, EXP_P, EXP_Q, SELU_ALPHA, SELU_LAMBDA,
    };
    use std::arch::aarch64::*;

    /// Two-lane [`ops::fast_exp_core`]; see the AVX2 variant for the
    /// bit-identity notes. No `vfma` — separate rounded multiply and add.
    #[inline]
    unsafe fn exp_core_f64x2(x: float64x2_t) -> float64x2_t {
        let magic = vdupq_n_f64(EXP_MAGIC);
        let t = vaddq_f64(vmulq_f64(vdupq_n_f64(EXP_LOG2E), x), magic);
        let n = vsubq_f64(t, magic);
        let r = vsubq_f64(
            vsubq_f64(x, vmulq_f64(n, vdupq_n_f64(EXP_C1))),
            vmulq_f64(n, vdupq_n_f64(EXP_C2)),
        );
        let rr = vmulq_f64(r, r);
        let p = vmulq_f64(
            r,
            vaddq_f64(
                vmulq_f64(
                    vaddq_f64(vmulq_f64(vdupq_n_f64(EXP_P[0]), rr), vdupq_n_f64(EXP_P[1])),
                    rr,
                ),
                vdupq_n_f64(EXP_P[2]),
            ),
        );
        let q = vaddq_f64(
            vmulq_f64(
                vaddq_f64(
                    vmulq_f64(
                        vaddq_f64(vmulq_f64(vdupq_n_f64(EXP_Q[0]), rr), vdupq_n_f64(EXP_Q[1])),
                        rr,
                    ),
                    vdupq_n_f64(EXP_Q[2]),
                ),
                rr,
            ),
            vdupq_n_f64(EXP_Q[3]),
        );
        let e = vaddq_f64(
            vdupq_n_f64(1.0),
            vdivq_f64(vmulq_f64(vdupq_n_f64(2.0), p), vsubq_f64(q, p)),
        );
        let bits = vreinterpretq_u64_f64(t);
        let mant = vandq_u64(bits, vdupq_n_u64((1u64 << 52) - 1));
        let expn = vaddq_u64(vsubq_u64(mant, vdupq_n_u64(1 << 51)), vdupq_n_u64(1023));
        let scale = vreinterpretq_f64_u64(vshlq_n_u64::<52>(expn));
        vmulq_f64(e, scale)
    }

    /// Rust-`clamp`-semantics lane clamp: compare+select keeps NaN lanes
    /// (with payload) exactly like the scalar `f64::clamp`.
    #[inline]
    unsafe fn clamp_f64x2(v: float64x2_t, lo: f64, hi: f64) -> float64x2_t {
        let vlo = vdupq_n_f64(lo);
        let vhi = vdupq_n_f64(hi);
        let t = vbslq_f64(vcltq_f64(v, vlo), vlo, v);
        vbslq_f64(vcgtq_f64(t, vhi), vhi, t)
    }

    pub(super) fn exp_slice(xs: &mut [f64]) {
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 2 <= n {
            // SAFETY: i + 2 <= n.
            unsafe {
                let v = vld1q_f64(p.add(i));
                vst1q_f64(p.add(i), exp_core_f64x2(clamp_f64x2(v, -708.0, 708.0)));
            }
            i += 2;
        }
        ops::fast_exp_slice_scalar(&mut xs[i..]);
    }

    pub(super) fn tanh_slice(xs: &mut [f64]) {
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 2 <= n {
            // SAFETY: i + 2 <= n.
            unsafe {
                let x = vld1q_f64(p.add(i));
                // z = max(-2|x|, -40): vmaxnm implements f64::max's
                // NaN-ignoring (maxNum) semantics.
                let z = vmaxnmq_f64(
                    vmulq_f64(vdupq_n_f64(-2.0), vabsq_f64(x)),
                    vdupq_n_f64(-40.0),
                );
                let magic = vdupq_n_f64(EXP_MAGIC);
                let t = vaddq_f64(vmulq_f64(vdupq_n_f64(EXP_LOG2E), z), magic);
                let nn = vsubq_f64(t, magic);
                let r = vsubq_f64(
                    vsubq_f64(z, vmulq_f64(nn, vdupq_n_f64(EXP_C1))),
                    vmulq_f64(nn, vdupq_n_f64(EXP_C2)),
                );
                let rr = vmulq_f64(r, r);
                let pp = vmulq_f64(
                    r,
                    vaddq_f64(
                        vmulq_f64(
                            vaddq_f64(vmulq_f64(vdupq_n_f64(EXP_P[0]), rr), vdupq_n_f64(EXP_P[1])),
                            rr,
                        ),
                        vdupq_n_f64(EXP_P[2]),
                    ),
                );
                let q = vaddq_f64(
                    vmulq_f64(
                        vaddq_f64(
                            vmulq_f64(
                                vaddq_f64(
                                    vmulq_f64(vdupq_n_f64(EXP_Q[0]), rr),
                                    vdupq_n_f64(EXP_Q[1]),
                                ),
                                rr,
                            ),
                            vdupq_n_f64(EXP_Q[2]),
                        ),
                        rr,
                    ),
                    vdupq_n_f64(EXP_Q[3]),
                );
                let bits = vreinterpretq_u64_f64(t);
                let mant = vandq_u64(bits, vdupq_n_u64((1u64 << 52) - 1));
                let expn = vaddq_u64(vsubq_u64(mant, vdupq_n_u64(1 << 51)), vdupq_n_u64(1023));
                let scale = vreinterpretq_f64_u64(vshlq_n_u64::<52>(expn));
                let den = vsubq_f64(q, pp);
                let num = vmulq_f64(scale, vaddq_f64(q, pp));
                let y = vdivq_f64(vsubq_f64(den, num), vaddq_f64(den, num));
                // copysign(y, x): sign bit from x, magnitude bits from y.
                let sign = vdupq_n_u64(0x8000_0000_0000_0000);
                let signed = vbslq_f64(sign, x, y);
                // Final NaN select: x where x != x.
                let ord = vceqq_f64(x, x);
                vst1q_f64(p.add(i), vbslq_f64(ord, signed, x));
            }
            i += 2;
        }
        ops::fast_tanh_slice_scalar(&mut xs[i..]);
    }

    pub(super) fn selu_slice(xs: &mut [f64]) {
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 2 <= n {
            // SAFETY: i + 2 <= n.
            unsafe {
                let v = vld1q_f64(p.add(i));
                let e = exp_core_f64x2(clamp_f64x2(v, -708.0, 0.0));
                let neg = vmulq_f64(
                    vdupq_n_f64(SELU_LAMBDA * SELU_ALPHA),
                    vsubq_f64(e, vdupq_n_f64(1.0)),
                );
                let pos = vmulq_f64(vdupq_n_f64(SELU_LAMBDA), v);
                // v > 0.0 select; NaN compares false → negative branch.
                let gt = vcgtq_f64(v, vdupq_n_f64(0.0));
                vst1q_f64(p.add(i), vbslq_f64(gt, pos, neg));
            }
            i += 2;
        }
        ops::selu_slice_scalar(&mut xs[i..]);
    }
}

/// FMA-contracted activation cores — the Fast tier on `aarch64`, mirroring
/// [`avx2fma`] at two lanes: Horner steps fuse via `vfmaq_f64`, the
/// Cody–Waite subtraction via `vfmsq_f64` (`a - b*c`, one rounding).
/// Clamp/select/sign steps are the exact kernels', so special values
/// propagate identically.
#[cfg(target_arch = "aarch64")]
mod neonfma {
    use crate::ops::{
        self, EXP_C1, EXP_C2, EXP_LOG2E, EXP_MAGIC, EXP_P, EXP_Q, SELU_ALPHA, SELU_LAMBDA,
    };
    use std::arch::aarch64::*;

    /// Two-lane fused [`ops::fast_exp_core`]; see [`avx2fma`] for the
    /// contraction notes.
    #[inline]
    unsafe fn exp_core_f64x2(x: float64x2_t) -> float64x2_t {
        let magic = vdupq_n_f64(EXP_MAGIC);
        let t = vfmaq_f64(magic, vdupq_n_f64(EXP_LOG2E), x);
        let n = vsubq_f64(t, magic);
        // r = x - n*C1 - n*C2, each subtraction fused.
        let r = vfmsq_f64(vfmsq_f64(x, n, vdupq_n_f64(EXP_C1)), n, vdupq_n_f64(EXP_C2));
        let rr = vmulq_f64(r, r);
        // p = r * ((P0*rr + P1)*rr + P2), Horner steps fused.
        let p = vmulq_f64(
            r,
            vfmaq_f64(
                vdupq_n_f64(EXP_P[2]),
                vfmaq_f64(vdupq_n_f64(EXP_P[1]), vdupq_n_f64(EXP_P[0]), rr),
                rr,
            ),
        );
        // q = ((Q0*rr + Q1)*rr + Q2)*rr + Q3, Horner steps fused.
        let q = vfmaq_f64(
            vdupq_n_f64(EXP_Q[3]),
            vfmaq_f64(
                vdupq_n_f64(EXP_Q[2]),
                vfmaq_f64(vdupq_n_f64(EXP_Q[1]), vdupq_n_f64(EXP_Q[0]), rr),
                rr,
            ),
            rr,
        );
        let e = vaddq_f64(
            vdupq_n_f64(1.0),
            vdivq_f64(vmulq_f64(vdupq_n_f64(2.0), p), vsubq_f64(q, p)),
        );
        let bits = vreinterpretq_u64_f64(t);
        let mant = vandq_u64(bits, vdupq_n_u64((1u64 << 52) - 1));
        let expn = vaddq_u64(vsubq_u64(mant, vdupq_n_u64(1 << 51)), vdupq_n_u64(1023));
        let scale = vreinterpretq_f64_u64(vshlq_n_u64::<52>(expn));
        vmulq_f64(e, scale)
    }

    /// Rust-`clamp`-semantics lane clamp, as in the exact kernel.
    #[inline]
    unsafe fn clamp_f64x2(v: float64x2_t, lo: f64, hi: f64) -> float64x2_t {
        let vlo = vdupq_n_f64(lo);
        let vhi = vdupq_n_f64(hi);
        let t = vbslq_f64(vcltq_f64(v, vlo), vlo, v);
        vbslq_f64(vcgtq_f64(t, vhi), vhi, t)
    }

    pub(super) fn exp_slice(xs: &mut [f64]) {
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 2 <= n {
            // SAFETY: i + 2 <= n.
            unsafe {
                let v = vld1q_f64(p.add(i));
                vst1q_f64(p.add(i), exp_core_f64x2(clamp_f64x2(v, -708.0, 708.0)));
            }
            i += 2;
        }
        ops::fast_exp_slice_scalar(&mut xs[i..]);
    }

    pub(super) fn tanh_slice(xs: &mut [f64]) {
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 2 <= n {
            // SAFETY: i + 2 <= n.
            unsafe {
                let x = vld1q_f64(p.add(i));
                let z = vmaxnmq_f64(
                    vmulq_f64(vdupq_n_f64(-2.0), vabsq_f64(x)),
                    vdupq_n_f64(-40.0),
                );
                let magic = vdupq_n_f64(EXP_MAGIC);
                let t = vfmaq_f64(magic, vdupq_n_f64(EXP_LOG2E), z);
                let nn = vsubq_f64(t, magic);
                let r = vfmsq_f64(
                    vfmsq_f64(z, nn, vdupq_n_f64(EXP_C1)),
                    nn,
                    vdupq_n_f64(EXP_C2),
                );
                let rr = vmulq_f64(r, r);
                let pp = vmulq_f64(
                    r,
                    vfmaq_f64(
                        vdupq_n_f64(EXP_P[2]),
                        vfmaq_f64(vdupq_n_f64(EXP_P[1]), vdupq_n_f64(EXP_P[0]), rr),
                        rr,
                    ),
                );
                let q = vfmaq_f64(
                    vdupq_n_f64(EXP_Q[3]),
                    vfmaq_f64(
                        vdupq_n_f64(EXP_Q[2]),
                        vfmaq_f64(vdupq_n_f64(EXP_Q[1]), vdupq_n_f64(EXP_Q[0]), rr),
                        rr,
                    ),
                    rr,
                );
                let bits = vreinterpretq_u64_f64(t);
                let mant = vandq_u64(bits, vdupq_n_u64((1u64 << 52) - 1));
                let expn = vaddq_u64(vsubq_u64(mant, vdupq_n_u64(1 << 51)), vdupq_n_u64(1023));
                let scale = vreinterpretq_f64_u64(vshlq_n_u64::<52>(expn));
                let den = vsubq_f64(q, pp);
                let num = vmulq_f64(scale, vaddq_f64(q, pp));
                let y = vdivq_f64(vsubq_f64(den, num), vaddq_f64(den, num));
                let sign = vdupq_n_u64(0x8000_0000_0000_0000);
                let signed = vbslq_f64(sign, x, y);
                let ord = vceqq_f64(x, x);
                vst1q_f64(p.add(i), vbslq_f64(ord, signed, x));
            }
            i += 2;
        }
        ops::fast_tanh_slice_scalar(&mut xs[i..]);
    }

    pub(super) fn selu_slice(xs: &mut [f64]) {
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 2 <= n {
            // SAFETY: i + 2 <= n.
            unsafe {
                let v = vld1q_f64(p.add(i));
                let e = exp_core_f64x2(clamp_f64x2(v, -708.0, 0.0));
                let la = vdupq_n_f64(SELU_LAMBDA * SELU_ALPHA);
                // neg = λα·e − λα, fused via vfmsq on the negated constant.
                let neg = vfmaq_f64(vnegq_f64(la), la, e);
                let pos = vmulq_f64(vdupq_n_f64(SELU_LAMBDA), v);
                let gt = vcgtq_f64(v, vdupq_n_f64(0.0));
                vst1q_f64(p.add(i), vbslq_f64(gt, pos, neg));
            }
            i += 2;
        }
        ops::selu_slice_scalar(&mut xs[i..]);
    }
}
