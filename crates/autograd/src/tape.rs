//! The tape: a flat, append-only record of operations for one forward pass,
//! with an **arena** twist: [`Tape::reset`] rewinds the tape without freeing
//! node storage, so replaying the same graph next step reuses every matrix
//! in place and the steady-state training loop performs no heap allocation.
//!
//! # Arena lifecycle
//!
//! - A fresh tape behaves exactly like the classic define-by-run tape.
//! - `reset()` sets the live-node cursor to zero but keeps the node vector.
//! - Each op first claims the next node slot ([`Tape::begin`]): when the
//!   slot's stored value already has the requested shape, the op computes
//!   into it with the `*_into` kernels from `bellamy-linalg`; on a shape
//!   divergence the stale suffix is retired into the tape's
//!   [`BufferPool`] and rebuilt from pooled storage.
//! - Op payload matrices (dropout masks, loss targets) are reused in place
//!   the same way, so alternating between a handful of minibatch shapes
//!   (e.g. the short last batch of each epoch) is also allocation-free once
//!   every shape has been seen.
//!
//! Gradients follow the same discipline: [`Tape::backward_into`] writes into
//! a caller-owned, reusable [`Gradients`] workspace and accumulates fan-in
//! with `axpy` instead of cloning.

use crate::ops::Activation;
use bellamy_linalg::{BufferPool, Matrix};
use std::borrow::Cow;

/// Index of a node on a [`Tape`]. Only valid for the tape that produced it.
pub type NodeId = usize;

/// One recorded operation plus its forward value.
struct Node {
    value: Matrix,
    op: Op,
}

/// The operation that produced a node. Stores whatever the backward pass
/// needs (parent ids plus saved tensors/constants).
enum Op {
    /// An input or parameter; gradient accumulates here.
    Leaf,
    /// `C = A * B` (matrix product).
    MatMul(NodeId, NodeId),
    /// `C = A + B` elementwise.
    Add(NodeId, NodeId),
    /// `C = A - B` elementwise.
    Sub(NodeId, NodeId),
    /// `C = A ⊙ B` elementwise.
    Mul(NodeId, NodeId),
    /// `C = alpha * A`.
    Scale(NodeId, f64),
    /// `C = A + broadcast(bias)` where bias is `1 x cols`.
    AddBias(NodeId, NodeId),
    /// Elementwise activation; saves the input for the derivative.
    Unary(NodeId, Activation),
    /// Fused linear layer `y = act(x · w (+ bias))`: one node instead of a
    /// matmul/add-bias/activate chain, with the bias add and activation
    /// applied in the matmul's output pass. The pre-activation is never
    /// materialized; the backward pass recovers `act'` from the stored
    /// output alone ([`Activation::derivative_from_output`]).
    Linear {
        x: NodeId,
        w: NodeId,
        bias: Option<NodeId>,
        act: Activation,
    },
    /// Horizontal concatenation of equally-tall nodes.
    ConcatCols(Vec<NodeId>),
    /// Column slice `[start, end)` of the input.
    SliceCols { input: NodeId, start: usize },
    /// Row slice `[start, end)` of the input (contiguous block copy).
    SliceRows { input: NodeId, start: usize },
    /// Elementwise mean of equally-shaped nodes (Eq. 6: optional-property codes).
    MeanOfNodes(Vec<NodeId>),
    /// Affine dropout: `y = scale·(x ⊙ mask) + shift0 + shift1·(1 - mask)`;
    /// the gradient is `scale · mask`. Covers standard dropout
    /// (`scale = 1/keep`, shifts 0) and alpha-dropout
    /// (`shift0 = b`, `shift1 = a·α'`).
    Dropout {
        input: NodeId,
        mask: Matrix,
        scale: f64,
    },
    /// Mean Huber loss against a constant target; produces a `1 x 1` node.
    Huber {
        pred: NodeId,
        target: Matrix,
        delta: f64,
    },
    /// Mean squared error against a constant target; produces a `1 x 1` node.
    Mse { pred: NodeId, target: Matrix },
    /// Sum of all elements; produces a `1 x 1` node.
    Sum(NodeId),
    /// Mean of all elements; produces a `1 x 1` node.
    Mean(NodeId),
}

/// Sends an op's payloads (matrices, id vectors) back to the pools before
/// the op is replaced.
fn retire_op(op: &mut Op, pool: &mut BufferPool, ids: &mut Vec<Vec<NodeId>>) {
    match std::mem::replace(op, Op::Leaf) {
        Op::Dropout { mask, .. } => pool.put_matrix(mask),
        Op::Huber { target, .. } | Op::Mse { target, .. } => pool.put_matrix(target),
        Op::ConcatCols(v) | Op::MeanOfNodes(v) if v.capacity() > 0 => ids.push(v),
        _ => {}
    }
}

/// Gradients of a scalar output with respect to every node on the tape.
///
/// Nodes the output does not depend on have no entry. The struct doubles as
/// a reusable workspace: pass it to [`Tape::backward_into`] across steps and
/// the per-node gradient matrices (plus the accumulation scratch) are reused
/// instead of reallocated.
#[derive(Default)]
pub struct Gradients {
    slots: Vec<Option<Matrix>>,
    filled: Vec<bool>,
    scratch: BufferPool,
}

impl Gradients {
    /// An empty, reusable workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gradient with respect to node `id`, if the differentiated scalar
    /// depends on it.
    pub fn get(&self, id: NodeId) -> Option<&Matrix> {
        if *self.filled.get(id)? {
            self.slots[id].as_ref()
        } else {
            None
        }
    }

    /// Gradient with respect to node `id`: a borrow when present, an owned
    /// zero matrix of the node's shape when the output is independent of it.
    pub fn get_or_zeros(&self, id: NodeId, shape: (usize, usize)) -> Cow<'_, Matrix> {
        match self.get(id) {
            Some(g) => Cow::Borrowed(g),
            None => Cow::Owned(Matrix::zeros(shape.0, shape.1)),
        }
    }

    /// Prepares the workspace for a backward sweep over `n` nodes.
    fn start(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize_with(n, || None);
        }
        self.filled.clear();
        self.filled.resize(n, false);
    }

    /// A mutable, shape-checked slot for node `id`, reusing storage when the
    /// shape matches and recycling it through the scratch pool otherwise.
    fn slot_mut(&mut self, id: NodeId, rows: usize, cols: usize) -> &mut Matrix {
        let Self { slots, scratch, .. } = self;
        let slot = &mut slots[id];
        match slot {
            Some(m) if m.shape() == (rows, cols) => {}
            _ => {
                if let Some(old) = slot.take() {
                    scratch.put_matrix(old);
                }
                *slot = Some(scratch.take_matrix(rows, cols));
            }
        }
        slot.as_mut().expect("slot just ensured")
    }
}

/// A define-by-run computation tape.
///
/// Build one per forward/backward pass — or keep one alive and call
/// [`Tape::reset`] between passes to reuse its storage (see the module
/// docs). Create [`Tape::leaf`] nodes for the inputs and parameters, chain
/// operations, then call [`Tape::backward`] (allocating) or
/// [`Tape::backward_into`] (workspace-reusing) on a `1 x 1` result node.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// Number of live nodes; `nodes[live..]` are retained for reuse.
    live: usize,
    pool: BufferPool,
    /// Retired `ConcatCols`/`MeanOfNodes` id vectors, reused on rebuild so
    /// shape divergences stay allocation-free too.
    id_pool: Vec<Vec<NodeId>>,
    /// When set, activations use the seed implementation's libm scalar math
    /// (std `tanh`/`exp`, derivative recomputed from the input) instead of
    /// the polynomial kernels and output-derived derivatives. Only the
    /// train-step benchmark's baseline turns this on.
    reference_scalars: bool,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded since the last reset.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no nodes have been recorded since the last reset.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Rewinds the tape without freeing node storage: the next pass reuses
    /// every same-shaped matrix in place.
    pub fn reset(&mut self) {
        self.live = 0;
    }

    /// Switches activations to the seed implementation's libm scalar math
    /// (benchmark baseline only; see the field docs).
    #[doc(hidden)]
    pub fn set_reference_scalars(&mut self, on: bool) {
        self.reference_scalars = on;
    }

    /// Forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        debug_assert!(id < self.live, "node {id} is not live");
        &self.nodes[id].value
    }

    /// Claims the next node slot with a `rows x cols` value matrix and
    /// returns its id. Reuses the retained slot when shapes agree; otherwise
    /// retires the stale suffix into the pool and rebuilds from it.
    fn begin(&mut self, rows: usize, cols: usize) -> NodeId {
        if self.live < self.nodes.len() {
            if self.nodes[self.live].value.shape() == (rows, cols) {
                self.live += 1;
                return self.live - 1;
            }
            let live = self.live;
            let Self {
                nodes,
                pool,
                id_pool,
                ..
            } = self;
            for mut node in nodes.drain(live..) {
                retire_op(&mut node.op, pool, id_pool);
                pool.put_matrix(node.value);
            }
        }
        let value = self.pool.take_matrix(rows, cols);
        self.nodes.push(Node {
            value,
            op: Op::Leaf,
        });
        self.live += 1;
        self.live - 1
    }

    /// Splits the node array at `id`, yielding the already-recorded prefix
    /// and the node under construction.
    fn parts(&mut self, id: NodeId) -> (&[Node], &mut Node) {
        let (prev, rest) = self.nodes.split_at_mut(id);
        (prev, &mut rest[0])
    }

    fn finish(&mut self, id: NodeId, op: Op) -> NodeId {
        let Self {
            nodes,
            pool,
            id_pool,
            ..
        } = self;
        let node = &mut nodes[id];
        retire_op(&mut node.op, pool, id_pool);
        node.op = op;
        debug_assert!(
            node.value.all_finite(),
            "non-finite value entering the tape"
        );
        id
    }

    /// A cleared id vector holding `parts`, drawn from the id pool.
    fn adopt_ids(&mut self, parts: &[NodeId]) -> Vec<NodeId> {
        let mut v = self.id_pool.pop().unwrap_or_default();
        v.clear();
        v.extend_from_slice(parts);
        v
    }

    /// Registers an input or parameter matrix, copying it into arena
    /// storage (the caller keeps ownership; no allocation once warm).
    pub fn leaf_ref(&mut self, value: &Matrix) -> NodeId {
        let id = self.begin(value.rows(), value.cols());
        self.nodes[id].value.copy_from(value);
        self.finish(id, Op::Leaf)
    }

    /// Registers an input or parameter matrix by value.
    pub fn leaf(&mut self, value: Matrix) -> NodeId {
        let id = self.begin(value.rows(), value.cols());
        // Adopt the incoming storage and retire the slot's previous one, so
        // by-value leaves stay move-cheap on fresh tapes.
        let old = std::mem::replace(&mut self.nodes[id].value, value);
        self.pool.put_matrix(old);
        self.finish(id, Op::Leaf)
    }

    /// Matrix product `a * b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (m, n) = (self.value(a).rows(), self.value(b).cols());
        let id = self.begin(m, n);
        let reference = self.reference_scalars;
        let (prev, node) = self.parts(id);
        if reference {
            prev[a]
                .value
                .matmul_reference_into(&prev[b].value, &mut node.value);
        } else {
            prev[a].value.matmul_into(&prev[b].value, &mut node.value);
        }
        self.finish(id, Op::MatMul(a, b))
    }

    /// Elementwise sum. Both operands must share a shape; `1 x 1` nodes can
    /// be combined with [`Tape::add`] to accumulate losses.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (r, c) = self.value(a).shape();
        let id = self.begin(r, c);
        let (prev, node) = self.parts(id);
        prev[a].value.add_into(&prev[b].value, &mut node.value);
        self.finish(id, Op::Add(a, b))
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (r, c) = self.value(a).shape();
        let id = self.begin(r, c);
        let (prev, node) = self.parts(id);
        prev[a].value.sub_into(&prev[b].value, &mut node.value);
        self.finish(id, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (r, c) = self.value(a).shape();
        let id = self.begin(r, c);
        let (prev, node) = self.parts(id);
        prev[a].value.hadamard_into(&prev[b].value, &mut node.value);
        self.finish(id, Op::Mul(a, b))
    }

    /// Scalar multiple `alpha * a`.
    pub fn scale(&mut self, a: NodeId, alpha: f64) -> NodeId {
        let (r, c) = self.value(a).shape();
        let id = self.begin(r, c);
        let (prev, node) = self.parts(id);
        prev[a].value.scale_into(alpha, &mut node.value);
        self.finish(id, Op::Scale(a, alpha))
    }

    /// Adds a `1 x cols` bias row to every row of `x`.
    pub fn add_bias(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let (r, c) = self.value(x).shape();
        let id = self.begin(r, c);
        let (prev, node) = self.parts(id);
        prev[x]
            .value
            .broadcast_add_row_into(&prev[bias].value, &mut node.value);
        self.finish(id, Op::AddBias(x, bias))
    }

    /// Applies an elementwise activation.
    pub fn activate(&mut self, x: NodeId, act: Activation) -> NodeId {
        let (r, c) = self.value(x).shape();
        let id = self.begin(r, c);
        let reference = self.reference_scalars;
        let (prev, node) = self.parts(id);
        if reference {
            prev[x]
                .value
                .map_into(&mut node.value, |v| act.apply_reference(v));
        } else {
            node.value.copy_from(&prev[x].value);
            act.apply_slice_in_place(node.value.as_mut_slice());
        }
        self.finish(id, Op::Unary(x, act))
    }

    /// Fused linear layer `act(x · w (+ bias))` as a single node: the bias
    /// broadcast and the activation run in the matmul's output pass while
    /// each row is still hot, and the tape records one op instead of three.
    /// Bit-identical to the equivalent
    /// `matmul` → `add_bias` → `activate` chain, forward and backward.
    ///
    /// Under `reference_scalars` (the benchmark's seed baseline) the unfused
    /// chain is emitted instead, so the baseline keeps measuring the
    /// original op sequence.
    pub fn linear(
        &mut self,
        x: NodeId,
        w: NodeId,
        bias: Option<NodeId>,
        act: Activation,
    ) -> NodeId {
        if self.reference_scalars {
            let mut y = self.matmul(x, w);
            if let Some(b) = bias {
                y = self.add_bias(y, b);
            }
            return if act == Activation::Identity {
                y
            } else {
                self.activate(y, act)
            };
        }
        let (m, n) = (self.value(x).rows(), self.value(w).cols());
        let id = self.begin(m, n);
        let (prev, node) = self.parts(id);
        prev[x].value.matmul_bias_rowapply_into(
            &prev[w].value,
            bias.map(|b| &prev[b].value),
            &mut node.value,
            |row| act.apply_slice_in_place(row),
        );
        self.finish(id, Op::Linear { x, w, bias, act })
    }

    /// Horizontally concatenates nodes with equal row counts.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_cols of no nodes");
        let rows = self.value(parts[0]).rows();
        let cols = parts.iter().map(|&p| self.value(p).cols()).sum();
        let id = self.begin(rows, cols);
        let (prev, node) = self.parts(id);
        for i in 0..rows {
            let orow = node.value.row_mut(i);
            let mut offset = 0;
            for &p in parts {
                let v = &prev[p].value;
                assert_eq!(v.rows(), rows, "concat_cols row mismatch");
                orow[offset..offset + v.cols()].copy_from_slice(v.row(i));
                offset += v.cols();
            }
        }
        // Reuse the previous id vector when the slot already held a concat.
        if let Op::ConcatCols(ids) = &mut self.nodes[id].op {
            ids.clear();
            ids.extend_from_slice(parts);
            debug_assert!(self.nodes[id].value.all_finite());
            id
        } else {
            let ids = self.adopt_ids(parts);
            self.finish(id, Op::ConcatCols(ids))
        }
    }

    /// Copies columns `[start, end)` of `x`.
    pub fn slice_cols(&mut self, x: NodeId, start: usize, end: usize) -> NodeId {
        let rows = self.value(x).rows();
        let id = self.begin(rows, end - start);
        let (prev, node) = self.parts(id);
        prev[x].value.slice_cols_into(start, end, &mut node.value);
        self.finish(id, Op::SliceCols { input: x, start })
    }

    /// Copies rows `[start, end)` of `x` — the inverse of stacking
    /// equally-shaped matrices by rows, used to split per-property codes
    /// out of the batched auto-encoder output.
    pub fn slice_rows(&mut self, x: NodeId, start: usize, end: usize) -> NodeId {
        let (rows, cols) = self.value(x).shape();
        assert!(
            start <= end && end <= rows,
            "slice_rows range out of bounds"
        );
        let id = self.begin(end - start, cols);
        let (prev, node) = self.parts(id);
        node.value
            .as_mut_slice()
            .copy_from_slice(&prev[x].value.as_slice()[start * cols..end * cols]);
        self.finish(id, Op::SliceRows { input: x, start })
    }

    /// Elementwise mean of equally-shaped nodes (used for the optional-code
    /// average of Eq. 6 in the paper).
    ///
    /// # Panics
    /// Panics if `parts` is empty.
    pub fn mean_of_nodes(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "mean_of_nodes with no inputs");
        let (r, c) = self.value(parts[0]).shape();
        let id = self.begin(r, c);
        let (prev, node) = self.parts(id);
        node.value.copy_from(&prev[parts[0]].value);
        for &p in &parts[1..] {
            node.value.add_assign(&prev[p].value);
        }
        node.value.scale_in_place(1.0 / parts.len() as f64);
        if let Op::MeanOfNodes(ids) = &mut self.nodes[id].op {
            ids.clear();
            ids.extend_from_slice(parts);
            id
        } else {
            let ids = self.adopt_ids(parts);
            self.finish(id, Op::MeanOfNodes(ids))
        }
    }

    /// Applies an affine dropout transform
    /// `y = scale·(x ⊙ mask) + shift0 + shift1·(1 - mask)`, drawing each
    /// mask element from `draw_mask` (typically a Bernoulli 0/1 draw).
    ///
    /// The mask matrix lives inside the op and is reused across arena
    /// replays. `shift0`/`shift1` are constants and do not participate in
    /// the gradient; `bellamy-nn` wraps this for standard dropout
    /// (`scale = 1/keep`, shifts 0) and alpha dropout (`shift0 = b`,
    /// `shift1 = a·α'`).
    pub fn dropout(
        &mut self,
        x: NodeId,
        scale: f64,
        shift0: f64,
        shift1: f64,
        mut draw_mask: impl FnMut() -> f64,
    ) -> NodeId {
        let (r, c) = self.value(x).shape();
        let id = self.begin(r, c);
        let Self {
            nodes,
            pool,
            id_pool,
            ..
        } = self;
        let (prev, rest) = nodes.split_at_mut(id);
        let node = &mut rest[0];
        let mut mask = match std::mem::replace(&mut node.op, Op::Leaf) {
            Op::Dropout { mask, .. } if mask.shape() == (r, c) => mask,
            mut old => {
                retire_op(&mut old, pool, id_pool);
                pool.take_matrix(r, c)
            }
        };
        for m in mask.as_mut_slice() {
            *m = draw_mask();
        }
        prev[x]
            .value
            .zip_apply_into(&mask, &mut node.value, |xi, mi| {
                xi * mi * scale + shift0 + shift1 * (1.0 - mi)
            });
        node.op = Op::Dropout {
            input: x,
            mask,
            scale,
        };
        debug_assert!(
            node.value.all_finite(),
            "non-finite value entering the tape"
        );
        id
    }

    /// Ensures the node's op holds a target matrix with the given contents,
    /// reusing the stored one when shapes agree.
    fn adopt_target(&mut self, id: NodeId, target: &Matrix) -> Matrix {
        let Self {
            nodes,
            pool,
            id_pool,
            ..
        } = self;
        let node = &mut nodes[id];
        match std::mem::replace(&mut node.op, Op::Leaf) {
            Op::Huber { target: mut t, .. } | Op::Mse { target: mut t, .. }
                if t.shape() == target.shape() =>
            {
                t.copy_from(target);
                t
            }
            mut old => {
                retire_op(&mut old, pool, id_pool);
                let mut t = pool.take_matrix(target.rows(), target.cols());
                t.copy_from(target);
                t
            }
        }
    }

    /// Mean Huber loss of `pred` against a constant `target` (both same
    /// shape). `delta` is the quadratic-to-linear transition point.
    pub fn huber_loss(&mut self, pred: NodeId, target: &Matrix, delta: f64) -> NodeId {
        assert!(delta > 0.0, "huber delta must be positive");
        assert_eq!(
            self.value(pred).shape(),
            target.shape(),
            "huber target shape mismatch"
        );
        let id = self.begin(1, 1);
        let target = self.adopt_target(id, target);
        let p = &self.nodes[pred].value;
        let n = p.len() as f64;
        let mut total = 0.0;
        for (&pi, &ti) in p.as_slice().iter().zip(target.as_slice().iter()) {
            let d = pi - ti;
            total += if d.abs() <= delta {
                0.5 * d * d
            } else {
                delta * (d.abs() - 0.5 * delta)
            };
        }
        self.nodes[id].value[(0, 0)] = total / n;
        self.nodes[id].op = Op::Huber {
            pred,
            target,
            delta,
        };
        id
    }

    /// Mean squared error of `pred` against a constant `target`.
    pub fn mse_loss(&mut self, pred: NodeId, target: &Matrix) -> NodeId {
        assert_eq!(
            self.value(pred).shape(),
            target.shape(),
            "mse target shape mismatch"
        );
        let id = self.begin(1, 1);
        let target = self.adopt_target(id, target);
        let p = &self.nodes[pred].value;
        let n = p.len() as f64;
        let total: f64 = p
            .as_slice()
            .iter()
            .zip(target.as_slice().iter())
            .map(|(&pi, &ti)| (pi - ti) * (pi - ti))
            .sum();
        self.nodes[id].value[(0, 0)] = total / n;
        self.nodes[id].op = Op::Mse { pred, target };
        id
    }

    /// Sum of all elements, as a `1 x 1` node.
    pub fn sum(&mut self, x: NodeId) -> NodeId {
        let id = self.begin(1, 1);
        let (prev, node) = self.parts(id);
        node.value[(0, 0)] = prev[x].value.sum();
        self.finish(id, Op::Sum(x))
    }

    /// Mean of all elements, as a `1 x 1` node.
    pub fn mean(&mut self, x: NodeId) -> NodeId {
        let id = self.begin(1, 1);
        let (prev, node) = self.parts(id);
        node.value[(0, 0)] = prev[x].value.mean();
        self.finish(id, Op::Mean(x))
    }

    /// Reverse-mode sweep from the `1 x 1` node `output`, into a fresh
    /// [`Gradients`]. Prefer [`Tape::backward_into`] in loops.
    ///
    /// # Panics
    /// Panics if `output` is not scalar-shaped.
    pub fn backward(&self, output: NodeId) -> Gradients {
        let mut grads = Gradients::new();
        self.backward_into(output, &mut grads);
        grads
    }

    /// Reverse-mode sweep from the `1 x 1` node `output`, writing into a
    /// reusable workspace. After warm-up the sweep performs no heap
    /// allocation: per-node gradient matrices are reused in place and
    /// fan-in accumulates via `axpy` into the existing slot.
    ///
    /// # Panics
    /// Panics if `output` is not scalar-shaped.
    pub fn backward_into(&self, output: NodeId, grads: &mut Gradients) {
        assert_eq!(
            self.value(output).shape(),
            (1, 1),
            "backward requires a scalar (1x1) output node"
        );
        grads.start(self.live);
        grads.slot_mut(output, 1, 1)[(0, 0)] = 1.0;
        grads.filled[output] = true;

        for id in (0..=output).rev() {
            if !grads.filled[id] {
                continue;
            }
            // Temporarily take the node's gradient out of the workspace so
            // parent slots can be written while it is read.
            let grad = grads.slots[id].take().expect("filled slots hold a matrix");
            self.accumulate_parents(id, &grad, grads);
            grads.slots[id] = Some(grad);
        }
    }

    /// Routes `delta = compute()` into the gradient slot of `parent`:
    /// overwriting the slot directly on first touch, accumulating with
    /// `axpy` through pooled scratch afterwards.
    fn accumulate(
        grads: &mut Gradients,
        parent: NodeId,
        rows: usize,
        cols: usize,
        compute: impl FnOnce(&mut Matrix),
    ) {
        if grads.filled[parent] {
            let mut tmp = grads.scratch.take_matrix(rows, cols);
            compute(&mut tmp);
            grads.slots[parent]
                .as_mut()
                .expect("filled slots hold a matrix")
                .axpy(1.0, &tmp);
            grads.scratch.put_matrix(tmp);
        } else {
            compute(grads.slot_mut(parent, rows, cols));
            grads.filled[parent] = true;
        }
    }

    fn accumulate_parents(&self, id: NodeId, grad: &Matrix, grads: &mut Gradients) {
        match &self.nodes[id].op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                // dA = dC * B^T ; dB = A^T * dC
                let (bv, av) = (self.value(*b), self.value(*a));
                let reference = self.reference_scalars;
                Self::accumulate(grads, *a, av.rows(), av.cols(), |m| {
                    if reference {
                        grad.matmul_transpose_b_reference_into(bv, m)
                    } else {
                        grad.matmul_transpose_b_into(bv, m)
                    }
                });
                Self::accumulate(grads, *b, bv.rows(), bv.cols(), |m| {
                    av.transpose_a_matmul_into(grad, m)
                });
            }
            Op::Add(a, b) => {
                for &p in [a, b] {
                    Self::accumulate(grads, p, grad.rows(), grad.cols(), |m| m.copy_from(grad));
                }
            }
            Op::Sub(a, b) => {
                Self::accumulate(grads, *a, grad.rows(), grad.cols(), |m| m.copy_from(grad));
                Self::accumulate(grads, *b, grad.rows(), grad.cols(), |m| {
                    grad.scale_into(-1.0, m)
                });
            }
            Op::Mul(a, b) => {
                let (av, bv) = (self.value(*a), self.value(*b));
                Self::accumulate(grads, *a, grad.rows(), grad.cols(), |m| {
                    grad.hadamard_into(bv, m)
                });
                Self::accumulate(grads, *b, grad.rows(), grad.cols(), |m| {
                    grad.hadamard_into(av, m)
                });
            }
            Op::Scale(a, alpha) => {
                let alpha = *alpha;
                Self::accumulate(grads, *a, grad.rows(), grad.cols(), |m| {
                    grad.scale_into(alpha, m)
                });
            }
            Op::AddBias(x, bias) => {
                Self::accumulate(grads, *x, grad.rows(), grad.cols(), |m| m.copy_from(grad));
                // Bias gradient sums over the batch dimension.
                Self::accumulate(grads, *bias, 1, grad.cols(), |m| grad.sum_rows_into(m));
            }
            Op::Unary(x, act) => {
                // The forward value is on the tape, so the derivative comes
                // transcendental-free from (input, output) pairs.
                let (input, act) = (self.value(*x), *act);
                let output = self.value(id);
                let reference = self.reference_scalars;
                Self::accumulate(grads, *x, grad.rows(), grad.cols(), |m| {
                    let out = m.as_mut_slice();
                    let (gs, xs, ys) = (grad.as_slice(), input.as_slice(), output.as_slice());
                    if reference {
                        for i in 0..out.len() {
                            out[i] = gs[i] * act.derivative_reference(xs[i]);
                        }
                    } else {
                        for i in 0..out.len() {
                            out[i] = gs[i] * act.derivative_from(xs[i], ys[i]);
                        }
                    }
                });
            }
            Op::Linear { x, w, bias, act } => {
                // dpre = grad ∘ act'(y), recovered from the stored output
                // alone, then routed through the same three matmul/row-sum
                // kernels the unfused chain uses — bit-identical to it.
                let (xv, wv) = (self.value(*x), self.value(*w));
                let y = self.value(id);
                let act = *act;
                let mut dpre = grads.scratch.take_matrix(grad.rows(), grad.cols());
                grad.zip_apply_into(y, &mut dpre, |g, yv| g * act.derivative_from_output(yv));
                Self::accumulate(grads, *x, xv.rows(), xv.cols(), |m| {
                    dpre.matmul_transpose_b_into(wv, m)
                });
                Self::accumulate(grads, *w, wv.rows(), wv.cols(), |m| {
                    xv.transpose_a_matmul_into(&dpre, m)
                });
                if let Some(b) = bias {
                    Self::accumulate(grads, *b, 1, dpre.cols(), |m| dpre.sum_rows_into(m));
                }
                grads.scratch.put_matrix(dpre);
            }
            Op::ConcatCols(parts) => {
                let mut offset = 0;
                for &p in parts {
                    let w = self.value(p).cols();
                    Self::accumulate(grads, p, grad.rows(), w, |m| {
                        grad.slice_cols_into(offset, offset + w, m)
                    });
                    offset += w;
                }
            }
            Op::SliceCols { input, start } => {
                // Scatter the slice gradient back into a zero matrix of the
                // input's shape.
                let (rows, cols) = self.value(*input).shape();
                let start = *start;
                Self::accumulate(grads, *input, rows, cols, |m| {
                    m.fill(0.0);
                    for i in 0..rows {
                        let src = grad.row(i);
                        m.row_mut(i)[start..start + src.len()].copy_from_slice(src);
                    }
                });
            }
            Op::SliceRows { input, start } => {
                // Scatter the slice gradient back into a zero matrix of the
                // input's shape (a single contiguous block).
                let (rows, cols) = self.value(*input).shape();
                let start = *start;
                let g = grad.as_slice();
                Self::accumulate(grads, *input, rows, cols, |m| {
                    m.fill(0.0);
                    m.as_mut_slice()[start * cols..start * cols + g.len()].copy_from_slice(g);
                });
            }
            Op::MeanOfNodes(parts) => {
                let share = 1.0 / parts.len() as f64;
                for &p in parts {
                    Self::accumulate(grads, p, grad.rows(), grad.cols(), |m| {
                        grad.scale_into(share, m)
                    });
                }
            }
            Op::Dropout { input, mask, scale } => {
                let scale = *scale;
                Self::accumulate(grads, *input, grad.rows(), grad.cols(), |m| {
                    grad.zip_apply_into(mask, m, |g, mi| g * mi * scale)
                });
            }
            Op::Huber {
                pred,
                target,
                delta,
            } => {
                let p = self.value(*pred);
                let n = p.len() as f64;
                let seed = grad[(0, 0)];
                let delta = *delta;
                Self::accumulate(grads, *pred, p.rows(), p.cols(), |m| {
                    p.zip_apply_into(target, m, |pi, ti| {
                        let d = pi - ti;
                        seed * d.clamp(-delta, delta) / n
                    })
                });
            }
            Op::Mse { pred, target } => {
                let p = self.value(*pred);
                let n = p.len() as f64;
                let seed = grad[(0, 0)];
                Self::accumulate(grads, *pred, p.rows(), p.cols(), |m| {
                    p.zip_apply_into(target, m, |pi, ti| seed * 2.0 * (pi - ti) / n)
                });
            }
            Op::Sum(x) => {
                let (rows, cols) = self.value(*x).shape();
                let seed = grad[(0, 0)];
                Self::accumulate(grads, *x, rows, cols, |m| m.fill(seed));
            }
            Op::Mean(x) => {
                let (rows, cols) = self.value(*x).shape();
                let n = (rows * cols) as f64;
                let seed = grad[(0, 0)];
                Self::accumulate(grads, *x, rows, cols, |m| m.fill(seed / n));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(tape: &Tape, id: NodeId) -> f64 {
        tape.value(id)[(0, 0)]
    }

    #[test]
    fn leaf_value_round_trip() {
        let mut tape = Tape::new();
        let m = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let id = tape.leaf(m.clone());
        assert_eq!(tape.value(id), &m);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn matmul_gradients_match_manual() {
        // f = sum(A * B); dA = ones * B^T, dB = A^T * ones.
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let b = tape.leaf(Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]));
        let c = tape.matmul(a, b);
        let s = tape.sum(c);
        let grads = tape.backward(s);

        let ones = Matrix::filled(2, 2, 1.0);
        let da = ones.matmul_transpose_b(tape.value(b));
        let db = tape.value(a).transpose_a_matmul(&ones);
        assert!(grads.get(a).unwrap().max_abs_diff(&da) < 1e-12);
        assert!(grads.get(b).unwrap().max_abs_diff(&db) < 1e-12);
    }

    #[test]
    fn add_bias_sums_gradient_over_batch() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(3, 2));
        let b = tape.leaf(Matrix::row_vector(&[1.0, -1.0]));
        let y = tape.add_bias(x, b);
        let s = tape.sum(y);
        let grads = tape.backward(s);
        // Each of the 3 batch rows contributes 1 to each bias element.
        assert_eq!(grads.get(b).unwrap(), &Matrix::row_vector(&[3.0, 3.0]));
    }

    #[test]
    fn mse_loss_value_and_gradient() {
        let mut tape = Tape::new();
        let p = tape.leaf(Matrix::row_vector(&[2.0, 4.0]));
        let loss = tape.mse_loss(p, &Matrix::row_vector(&[0.0, 0.0]));
        // (4 + 16) / 2 = 10
        assert!((scalar(&tape, loss) - 10.0).abs() < 1e-12);
        let grads = tape.backward(loss);
        // d/dp mean((p - t)^2) = 2 (p - t) / n = [2, 4]
        assert!(
            grads
                .get(p)
                .unwrap()
                .max_abs_diff(&Matrix::row_vector(&[2.0, 4.0]))
                < 1e-12
        );
    }

    #[test]
    fn huber_loss_quadratic_and_linear_regions() {
        let mut tape = Tape::new();
        let p = tape.leaf(Matrix::row_vector(&[0.5, 3.0]));
        let loss = tape.huber_loss(p, &Matrix::row_vector(&[0.0, 0.0]), 1.0);
        // elem 0: 0.5*0.25 = 0.125 (quadratic); elem 1: 1*(3-0.5) = 2.5 (linear)
        assert!((scalar(&tape, loss) - (0.125 + 2.5) / 2.0).abs() < 1e-12);
        let grads = tape.backward(loss);
        // grad elem 0: 0.5/2; elem 1: clamp -> 1/2.
        assert!(
            grads
                .get(p)
                .unwrap()
                .max_abs_diff(&Matrix::row_vector(&[0.25, 0.5]))
                < 1e-12
        );
    }

    #[test]
    fn concat_routes_gradients_to_parts() {
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::row_vector(&[1.0]));
        let b = tape.leaf(Matrix::row_vector(&[2.0, 3.0]));
        let c = tape.concat_cols(&[a, b]);
        // Weight the concatenated vector to distinguish positions.
        let w = tape.leaf(Matrix::col_vector(&[10.0, 100.0, 1000.0]));
        let y = tape.matmul(c, w);
        let s = tape.sum(y);
        let grads = tape.backward(s);
        assert_eq!(grads.get(a).unwrap(), &Matrix::row_vector(&[10.0]));
        assert_eq!(grads.get(b).unwrap(), &Matrix::row_vector(&[100.0, 1000.0]));
    }

    #[test]
    fn slice_rows_round_trips_stacked_blocks() {
        let mut tape = Tape::new();
        let stacked = tape.leaf(Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 8.0],
        ]));
        let top = tape.slice_rows(stacked, 0, 2);
        let bottom = tape.slice_rows(stacked, 2, 4);
        assert_eq!(
            tape.value(top),
            &Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])
        );
        assert_eq!(
            tape.value(bottom),
            &Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]])
        );
        // Gradient of sum(2*top) + sum(bottom) scatters per block.
        let scaled = tape.scale(top, 2.0);
        let s1 = tape.sum(scaled);
        let s2 = tape.sum(bottom);
        let total = tape.add(s1, s2);
        let grads = tape.backward(total);
        assert_eq!(
            grads.get(stacked).unwrap(),
            &Matrix::from_rows(&[
                vec![2.0, 2.0],
                vec![2.0, 2.0],
                vec![1.0, 1.0],
                vec![1.0, 1.0],
            ])
        );
    }

    #[test]
    fn slice_scatters_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[1.0, 2.0, 3.0, 4.0]));
        let mid = tape.slice_cols(x, 1, 3);
        let s = tape.sum(mid);
        let grads = tape.backward(s);
        assert_eq!(
            grads.get(x).unwrap(),
            &Matrix::row_vector(&[0.0, 1.0, 1.0, 0.0])
        );
    }

    #[test]
    fn mean_of_nodes_distributes_equally() {
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::row_vector(&[1.0, 2.0]));
        let b = tape.leaf(Matrix::row_vector(&[3.0, 4.0]));
        let c = tape.leaf(Matrix::row_vector(&[5.0, 6.0]));
        let m = tape.mean_of_nodes(&[a, b, c]);
        assert_eq!(tape.value(m), &Matrix::row_vector(&[3.0, 4.0]));
        let s = tape.sum(m);
        let grads = tape.backward(s);
        for id in [a, b, c] {
            assert!(
                grads
                    .get(id)
                    .unwrap()
                    .max_abs_diff(&Matrix::filled(1, 2, 1.0 / 3.0))
                    < 1e-12
            );
        }
    }

    #[test]
    fn dropout_masks_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[1.0, 2.0, 3.0]));
        // Deterministic mask 1, 0, 1 with scale 2.
        let mut draws = [1.0, 0.0, 1.0].into_iter();
        let y = tape.dropout(x, 2.0, 0.0, 0.0, || draws.next().unwrap());
        assert_eq!(tape.value(y), &Matrix::row_vector(&[2.0, 0.0, 6.0]));
        let s = tape.sum(y);
        let grads = tape.backward(s);
        assert_eq!(grads.get(x).unwrap(), &Matrix::row_vector(&[2.0, 0.0, 2.0]));
    }

    #[test]
    fn dropout_affine_shift_is_constant_in_gradient() {
        // Alpha-dropout shape: dropped entries take shift0 + shift1, kept
        // entries scale; gradient ignores the shift.
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[2.0, 4.0]));
        let mut draws = [0.0, 1.0].into_iter();
        let y = tape.dropout(x, 3.0, 0.5, 0.25, || draws.next().unwrap());
        // dropped: 0.5 + 0.25; kept: 4*3 + 0.5.
        assert_eq!(tape.value(y), &Matrix::row_vector(&[0.75, 12.5]));
        let s = tape.sum(y);
        let grads = tape.backward(s);
        assert_eq!(grads.get(x).unwrap(), &Matrix::row_vector(&[0.0, 3.0]));
    }

    #[test]
    fn unused_leaf_has_no_gradient() {
        let mut tape = Tape::new();
        let used = tape.leaf(Matrix::row_vector(&[1.0]));
        let unused = tape.leaf(Matrix::row_vector(&[9.0]));
        let s = tape.sum(used);
        let grads = tape.backward(s);
        assert!(grads.get(unused).is_none());
        assert_eq!(
            grads.get_or_zeros(unused, (1, 1)).as_ref(),
            &Matrix::zeros(1, 1)
        );
        assert_eq!(grads.get_or_zeros(used, (1, 1)).as_ref(), tape.value(s));
    }

    #[test]
    fn diamond_dependency_accumulates() {
        // y = x + x ; dy/dx = 2
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[5.0]));
        let y = tape.add(x, x);
        let s = tape.sum(y);
        let grads = tape.backward(s);
        assert_eq!(grads.get(x).unwrap(), &Matrix::row_vector(&[2.0]));
    }

    #[test]
    fn activation_chain_backward() {
        // loss = mean(tanh(selu(x))); verified against finite differences in
        // the gradcheck module; here just confirm shape and finiteness.
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_rows(&[vec![0.3, -0.8], vec![1.2, -2.0]]));
        let h = tape.activate(x, Activation::Selu);
        let t = tape.activate(h, Activation::Tanh);
        let loss = tape.mean(t);
        let grads = tape.backward(loss);
        let g = grads.get(x).unwrap();
        assert_eq!(g.shape(), (2, 2));
        assert!(g.all_finite());
    }

    #[test]
    fn fused_linear_matches_unfused_chain_bitwise() {
        // Forward values and every gradient must be bit-identical between
        // the fused Op::Linear node and the matmul/add_bias/activate chain,
        // for each activation, with and without bias, on the register-kernel
        // width (8) and a general width.
        use crate::ops::Activation as A;
        for act in [A::Identity, A::Selu, A::Tanh, A::Sigmoid, A::Relu] {
            for (k, n) in [(40usize, 8usize), (8, 40)] {
                let x = Matrix::from_fn(6, k, |i, j| ((i * 17 + j * 5) % 23) as f64 * 0.11 - 1.2);
                let w = Matrix::from_fn(k, n, |i, j| ((i * 3 + j * 13) % 19) as f64 * 0.07 - 0.6);
                let bias_m = Matrix::from_fn(1, n, |_, j| j as f64 * 0.05 - 0.4);
                let t = Matrix::from_fn(6, n, |i, j| ((i + j) % 5) as f64 * 0.2);
                for with_bias in [false, true] {
                    let mut unfused = Tape::new();
                    let (ux, uw, ub) = (
                        unfused.leaf_ref(&x),
                        unfused.leaf_ref(&w),
                        unfused.leaf_ref(&bias_m),
                    );
                    let mut pre = unfused.matmul(ux, uw);
                    if with_bias {
                        pre = unfused.add_bias(pre, ub);
                    }
                    let uy = if act == A::Identity {
                        pre
                    } else {
                        unfused.activate(pre, act)
                    };
                    let uloss = unfused.mse_loss(uy, &t);
                    let ugrads = unfused.backward(uloss);

                    let mut fused = Tape::new();
                    let (fx, fw, fb) = (
                        fused.leaf_ref(&x),
                        fused.leaf_ref(&w),
                        fused.leaf_ref(&bias_m),
                    );
                    let fy = fused.linear(fx, fw, with_bias.then_some(fb), act);
                    let floss = fused.mse_loss(fy, &t);
                    let fgrads = fused.backward(floss);

                    let label = format!("{act:?} k={k} n={n} bias={with_bias}");
                    assert_eq!(fused.value(fy), unfused.value(uy), "forward {label}");
                    assert_eq!(fused.value(floss), unfused.value(uloss), "loss {label}");
                    assert_eq!(fgrads.get(fx), ugrads.get(ux), "dx {label}");
                    assert_eq!(fgrads.get(fw), ugrads.get(uw), "dw {label}");
                    if with_bias {
                        assert_eq!(fgrads.get(fb), ugrads.get(ub), "dbias {label}");
                    } else {
                        assert!(fgrads.get(fb).is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn fused_linear_replays_through_arena() {
        let x = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.17 - 0.9);
        let w = Matrix::from_fn(3, 2, |i, j| ((i + 1) * (j + 2)) as f64 * 0.11);
        let b = Matrix::row_vector(&[0.1, -0.2]);
        let t = Matrix::filled(4, 2, 0.4);

        let mut fresh = Tape::new();
        let (fx, fw, fb) = (fresh.leaf_ref(&x), fresh.leaf_ref(&w), fresh.leaf_ref(&b));
        let fy = fresh.linear(fx, fw, Some(fb), Activation::Selu);
        let floss = fresh.mse_loss(fy, &t);
        let fresh_grads = fresh.backward(floss);

        let mut arena = Tape::new();
        let mut grads = Gradients::new();
        for step in 0..4 {
            arena.reset();
            let (ax, aw, ab) = (arena.leaf_ref(&x), arena.leaf_ref(&w), arena.leaf_ref(&b));
            let ay = arena.linear(ax, aw, Some(ab), Activation::Selu);
            let aloss = arena.mse_loss(ay, &t);
            arena.backward_into(aloss, &mut grads);
            assert_eq!(arena.value(aloss), fresh.value(floss), "step {step}");
            assert_eq!(grads.get(ax), fresh_grads.get(fx), "step {step}: dx");
            assert_eq!(grads.get(aw), fresh_grads.get(fw), "step {step}: dw");
            assert_eq!(grads.get(ab), fresh_grads.get(fb), "step {step}: db");
        }
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_rejects_non_scalar() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[1.0, 2.0]));
        let _ = tape.backward(x);
    }

    /// Builds a small MLP loss on the given tape; returns (x, w, loss).
    fn build_mlp(tape: &mut Tape, x: &Matrix, w: &Matrix, t: &Matrix) -> (NodeId, NodeId, NodeId) {
        let xn = tape.leaf_ref(x);
        let wn = tape.leaf_ref(w);
        let h = tape.matmul(xn, wn);
        let a = tape.activate(h, Activation::Selu);
        let loss = tape.mse_loss(a, t);
        (xn, wn, loss)
    }

    #[test]
    fn reset_replay_matches_fresh_tape_bitwise() {
        let x = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.17 - 0.9);
        let w = Matrix::from_fn(3, 2, |i, j| ((i + 1) * (j + 2)) as f64 * 0.11);
        let t = Matrix::filled(4, 2, 0.4);

        // Fresh tape per step.
        let mut fresh = Tape::new();
        let (fx, fw, floss) = build_mlp(&mut fresh, &x, &w, &t);
        let fresh_grads = fresh.backward(floss);

        // One tape, reset and replayed several times with a reusable
        // gradient workspace.
        let mut arena = Tape::new();
        let mut grads = Gradients::new();
        for step in 0..5 {
            arena.reset();
            let (ax, aw, aloss) = build_mlp(&mut arena, &x, &w, &t);
            assert_eq!((ax, aw), (fx, fw), "replay must assign identical ids");
            arena.backward_into(aloss, &mut grads);
            assert_eq!(
                arena.value(aloss),
                fresh.value(floss),
                "step {step}: loss must be bit-identical"
            );
            assert_eq!(grads.get(ax), fresh_grads.get(fx), "step {step}: dx");
            assert_eq!(grads.get(aw), fresh_grads.get(fw), "step {step}: dw");
        }
    }

    #[test]
    fn reset_with_changing_shapes_recycles_storage() {
        let mut tape = Tape::new();
        let mut grads = Gradients::new();
        // Alternate between two batch sizes like an epoch's last minibatch.
        for step in 0..6 {
            let rows = if step % 2 == 0 { 8 } else { 3 };
            tape.reset();
            let x = tape.leaf_ref(&Matrix::filled(rows, 2, 0.5));
            let w = tape.leaf_ref(&Matrix::filled(2, 1, 1.5));
            let y = tape.matmul(x, w);
            let loss = tape.mse_loss(y, &Matrix::zeros(rows, 1));
            tape.backward_into(loss, &mut grads);
            // loss = mean((0.5*1.5*2)^2) = 2.25 regardless of batch size.
            assert!(
                (tape.value(loss)[(0, 0)] - 2.25).abs() < 1e-12,
                "step {step}"
            );
            assert_eq!(grads.get(w).unwrap().shape(), (2, 1));
        }
    }
}
