//! The tape: a flat, append-only record of operations for one forward pass.

use crate::ops::Activation;
use bellamy_linalg::Matrix;

/// Index of a node on a [`Tape`]. Only valid for the tape that produced it.
pub type NodeId = usize;

/// One recorded operation plus its forward value.
struct Node {
    value: Matrix,
    op: Op,
}

/// The operation that produced a node. Stores whatever the backward pass
/// needs (parent ids plus saved tensors/constants).
enum Op {
    /// An input or parameter; gradient accumulates here.
    Leaf,
    /// `C = A * B` (matrix product).
    MatMul(NodeId, NodeId),
    /// `C = A + B` elementwise.
    Add(NodeId, NodeId),
    /// `C = A - B` elementwise.
    Sub(NodeId, NodeId),
    /// `C = A ⊙ B` elementwise.
    Mul(NodeId, NodeId),
    /// `C = alpha * A`.
    Scale(NodeId, f64),
    /// `C = A + broadcast(bias)` where bias is `1 x cols`.
    AddBias(NodeId, NodeId),
    /// Elementwise activation; saves the input for the derivative.
    Unary(NodeId, Activation),
    /// Horizontal concatenation of equally-tall nodes.
    ConcatCols(Vec<NodeId>),
    /// Column slice `[start, end)` of the input.
    SliceCols { input: NodeId, start: usize },
    /// Elementwise mean of equally-shaped nodes (Eq. 6: optional-property codes).
    MeanOfNodes(Vec<NodeId>),
    /// Affine dropout: `y = a * (x ⊙ mask) + shift`; gradient is `a * mask`.
    /// Covers standard dropout (`a = 1/keep`, shift 0) and alpha-dropout.
    Dropout { input: NodeId, mask: Matrix, scale: f64 },
    /// Mean Huber loss against a constant target; produces a `1 x 1` node.
    Huber { pred: NodeId, target: Matrix, delta: f64 },
    /// Mean squared error against a constant target; produces a `1 x 1` node.
    Mse { pred: NodeId, target: Matrix },
    /// Sum of all elements; produces a `1 x 1` node.
    Sum(NodeId),
    /// Mean of all elements; produces a `1 x 1` node.
    Mean(NodeId),
}

/// Gradients of a scalar output with respect to every node on the tape.
///
/// Nodes the output does not depend on have no entry.
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
}

impl Gradients {
    /// Gradient with respect to node `id`, if the differentiated scalar
    /// depends on it.
    pub fn get(&self, id: NodeId) -> Option<&Matrix> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }

    /// Gradient with respect to node `id`, or a zero matrix of the node's
    /// shape when independent.
    pub fn get_or_zeros(&self, id: NodeId, shape: (usize, usize)) -> Matrix {
        match self.get(id) {
            Some(g) => g.clone(),
            None => Matrix::zeros(shape.0, shape.1),
        }
    }
}

/// A define-by-run computation tape.
///
/// Build one per forward/backward pass: create [`Tape::leaf`] nodes for the
/// inputs and parameters, chain operations, then call [`Tape::backward`] on a
/// `1 x 1` result node.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id].value
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        debug_assert!(value.all_finite(), "non-finite value entering the tape");
        self.nodes.push(Node { value, op });
        self.nodes.len() - 1
    }

    /// Registers an input or parameter matrix.
    pub fn leaf(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf)
    }

    /// Matrix product `a * b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.value(a).matmul(self.value(b));
        self.push(value, Op::MatMul(a, b))
    }

    /// Elementwise sum. Both operands must share a shape; `1 x 1` nodes can
    /// be combined with [`Tape::add`] to accumulate losses.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.value(a).add(self.value(b));
        self.push(value, Op::Add(a, b))
    }

    /// Elementwise difference `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.value(a).sub(self.value(b));
        self.push(value, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let value = self.value(a).hadamard(self.value(b));
        self.push(value, Op::Mul(a, b))
    }

    /// Scalar multiple `alpha * a`.
    pub fn scale(&mut self, a: NodeId, alpha: f64) -> NodeId {
        let value = self.value(a).scale(alpha);
        self.push(value, Op::Scale(a, alpha))
    }

    /// Adds a `1 x cols` bias row to every row of `x`.
    pub fn add_bias(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let value = self.value(x).broadcast_add_row(self.value(bias));
        self.push(value, Op::AddBias(x, bias))
    }

    /// Applies an elementwise activation.
    pub fn activate(&mut self, x: NodeId, act: Activation) -> NodeId {
        let value = self.value(x).map(|v| act.apply(v));
        self.push(value, Op::Unary(x, act))
    }

    /// Horizontally concatenates nodes with equal row counts.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        let values: Vec<&Matrix> = parts.iter().map(|&id| self.value(id)).collect();
        let value = Matrix::concat_cols(&values);
        self.push(value, Op::ConcatCols(parts.to_vec()))
    }

    /// Copies columns `[start, end)` of `x`.
    pub fn slice_cols(&mut self, x: NodeId, start: usize, end: usize) -> NodeId {
        let value = self.value(x).slice_cols(start, end);
        self.push(value, Op::SliceCols { input: x, start })
    }

    /// Elementwise mean of equally-shaped nodes (used for the optional-code
    /// average of Eq. 6 in the paper).
    ///
    /// # Panics
    /// Panics if `parts` is empty.
    pub fn mean_of_nodes(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "mean_of_nodes with no inputs");
        let mut acc = self.value(parts[0]).clone();
        for &id in &parts[1..] {
            acc.add_assign(self.value(id));
        }
        acc.scale_in_place(1.0 / parts.len() as f64);
        self.push(acc, Op::MeanOfNodes(parts.to_vec()))
    }

    /// Applies a precomputed dropout transform `y = scale * (x ⊙ mask) + shift`.
    ///
    /// The caller supplies the Bernoulli `mask` and the affine constants;
    /// `bellamy-nn` wraps this for standard and alpha dropout. `shift` is a
    /// constant and therefore does not participate in the gradient.
    pub fn dropout(&mut self, x: NodeId, mask: Matrix, scale: f64, shift: &Matrix) -> NodeId {
        let value = {
            let xv = self.value(x);
            let mut v = xv.hadamard(&mask);
            v.scale_in_place(scale);
            v.add_assign(shift);
            v
        };
        self.push(value, Op::Dropout { input: x, mask, scale })
    }

    /// Mean Huber loss of `pred` against a constant `target` (both same
    /// shape). `delta` is the quadratic-to-linear transition point.
    pub fn huber_loss(&mut self, pred: NodeId, target: Matrix, delta: f64) -> NodeId {
        assert!(delta > 0.0, "huber delta must be positive");
        let p = self.value(pred);
        assert_eq!(p.shape(), target.shape(), "huber target shape mismatch");
        let n = p.len() as f64;
        let mut total = 0.0;
        for (&pi, &ti) in p.as_slice().iter().zip(target.as_slice().iter()) {
            let d = pi - ti;
            total += if d.abs() <= delta {
                0.5 * d * d
            } else {
                delta * (d.abs() - 0.5 * delta)
            };
        }
        let value = Matrix::from_vec(1, 1, vec![total / n]);
        self.push(value, Op::Huber { pred, target, delta })
    }

    /// Mean squared error of `pred` against a constant `target`.
    pub fn mse_loss(&mut self, pred: NodeId, target: Matrix) -> NodeId {
        let p = self.value(pred);
        assert_eq!(p.shape(), target.shape(), "mse target shape mismatch");
        let n = p.len() as f64;
        let total: f64 = p
            .as_slice()
            .iter()
            .zip(target.as_slice().iter())
            .map(|(&pi, &ti)| (pi - ti) * (pi - ti))
            .sum();
        let value = Matrix::from_vec(1, 1, vec![total / n]);
        self.push(value, Op::Mse { pred, target })
    }

    /// Sum of all elements, as a `1 x 1` node.
    pub fn sum(&mut self, x: NodeId) -> NodeId {
        let value = Matrix::from_vec(1, 1, vec![self.value(x).sum()]);
        self.push(value, Op::Sum(x))
    }

    /// Mean of all elements, as a `1 x 1` node.
    pub fn mean(&mut self, x: NodeId) -> NodeId {
        let value = Matrix::from_vec(1, 1, vec![self.value(x).mean()]);
        self.push(value, Op::Mean(x))
    }

    /// Reverse-mode sweep from the `1 x 1` node `output`.
    ///
    /// # Panics
    /// Panics if `output` is not scalar-shaped.
    pub fn backward(&self, output: NodeId) -> Gradients {
        assert_eq!(
            self.value(output).shape(),
            (1, 1),
            "backward requires a scalar (1x1) output node"
        );
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[output] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        for id in (0..=output).rev() {
            let Some(grad) = grads[id].take() else {
                continue;
            };
            self.accumulate_parents(id, &grad, &mut grads);
            grads[id] = Some(grad);
        }

        Gradients { grads }
    }

    /// Adds `delta` into the gradient slot of `id`.
    fn accumulate(grads: &mut [Option<Matrix>], id: NodeId, delta: Matrix) {
        match &mut grads[id] {
            Some(existing) => existing.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    fn accumulate_parents(&self, id: NodeId, grad: &Matrix, grads: &mut [Option<Matrix>]) {
        match &self.nodes[id].op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                // dA = dC * B^T ; dB = A^T * dC
                let da = grad.matmul_transpose_b(self.value(*b));
                let db = self.value(*a).transpose_a_matmul(grad);
                Self::accumulate(grads, *a, da);
                Self::accumulate(grads, *b, db);
            }
            Op::Add(a, b) => {
                Self::accumulate(grads, *a, grad.clone());
                Self::accumulate(grads, *b, grad.clone());
            }
            Op::Sub(a, b) => {
                Self::accumulate(grads, *a, grad.clone());
                Self::accumulate(grads, *b, grad.scale(-1.0));
            }
            Op::Mul(a, b) => {
                let da = grad.hadamard(self.value(*b));
                let db = grad.hadamard(self.value(*a));
                Self::accumulate(grads, *a, da);
                Self::accumulate(grads, *b, db);
            }
            Op::Scale(a, alpha) => {
                Self::accumulate(grads, *a, grad.scale(*alpha));
            }
            Op::AddBias(x, bias) => {
                Self::accumulate(grads, *x, grad.clone());
                // Bias gradient sums over the batch dimension.
                Self::accumulate(grads, *bias, grad.sum_rows());
            }
            Op::Unary(x, act) => {
                let input = self.value(*x);
                let dx = grad.zip_map(input, |g, xi| g * act.derivative(xi));
                Self::accumulate(grads, *x, dx);
            }
            Op::ConcatCols(parts) => {
                let mut offset = 0;
                for &p in parts {
                    let w = self.value(p).cols();
                    Self::accumulate(grads, p, grad.slice_cols(offset, offset + w));
                    offset += w;
                }
            }
            Op::SliceCols { input, start } => {
                // Scatter the slice gradient back into a zero matrix of the
                // input's shape.
                let (rows, cols) = self.value(*input).shape();
                let mut dx = Matrix::zeros(rows, cols);
                for i in 0..rows {
                    let src = grad.row(i);
                    dx.row_mut(i)[*start..*start + src.len()].copy_from_slice(src);
                }
                Self::accumulate(grads, *input, dx);
            }
            Op::MeanOfNodes(parts) => {
                let share = grad.scale(1.0 / parts.len() as f64);
                for &p in parts {
                    Self::accumulate(grads, p, share.clone());
                }
            }
            Op::Dropout { input, mask, scale } => {
                let mut dx = grad.hadamard(mask);
                dx.scale_in_place(*scale);
                Self::accumulate(grads, *input, dx);
            }
            Op::Huber { pred, target, delta } => {
                let p = self.value(*pred);
                let n = p.len() as f64;
                let seed = grad[(0, 0)];
                let dx = p.zip_map(target, |pi, ti| {
                    let d = pi - ti;
                    seed * d.clamp(-*delta, *delta) / n
                });
                Self::accumulate(grads, *pred, dx);
            }
            Op::Mse { pred, target } => {
                let p = self.value(*pred);
                let n = p.len() as f64;
                let seed = grad[(0, 0)];
                let dx = p.zip_map(target, |pi, ti| seed * 2.0 * (pi - ti) / n);
                Self::accumulate(grads, *pred, dx);
            }
            Op::Sum(x) => {
                let (rows, cols) = self.value(*x).shape();
                let seed = grad[(0, 0)];
                Self::accumulate(grads, *x, Matrix::filled(rows, cols, seed));
            }
            Op::Mean(x) => {
                let (rows, cols) = self.value(*x).shape();
                let n = (rows * cols) as f64;
                let seed = grad[(0, 0)];
                Self::accumulate(grads, *x, Matrix::filled(rows, cols, seed / n));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(tape: &Tape, id: NodeId) -> f64 {
        tape.value(id)[(0, 0)]
    }

    #[test]
    fn leaf_value_round_trip() {
        let mut tape = Tape::new();
        let m = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let id = tape.leaf(m.clone());
        assert_eq!(tape.value(id), &m);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn matmul_gradients_match_manual() {
        // f = sum(A * B); dA = ones * B^T, dB = A^T * ones.
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let b = tape.leaf(Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]));
        let c = tape.matmul(a, b);
        let s = tape.sum(c);
        let grads = tape.backward(s);

        let ones = Matrix::filled(2, 2, 1.0);
        let da = ones.matmul_transpose_b(tape.value(b));
        let db = tape.value(a).transpose_a_matmul(&ones);
        assert!(grads.get(a).unwrap().max_abs_diff(&da) < 1e-12);
        assert!(grads.get(b).unwrap().max_abs_diff(&db) < 1e-12);
    }

    #[test]
    fn add_bias_sums_gradient_over_batch() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(3, 2));
        let b = tape.leaf(Matrix::row_vector(&[1.0, -1.0]));
        let y = tape.add_bias(x, b);
        let s = tape.sum(y);
        let grads = tape.backward(s);
        // Each of the 3 batch rows contributes 1 to each bias element.
        assert_eq!(grads.get(b).unwrap(), &Matrix::row_vector(&[3.0, 3.0]));
    }

    #[test]
    fn mse_loss_value_and_gradient() {
        let mut tape = Tape::new();
        let p = tape.leaf(Matrix::row_vector(&[2.0, 4.0]));
        let loss = tape.mse_loss(p, Matrix::row_vector(&[0.0, 0.0]));
        // (4 + 16) / 2 = 10
        assert!((scalar(&tape, loss) - 10.0).abs() < 1e-12);
        let grads = tape.backward(loss);
        // d/dp mean((p - t)^2) = 2 (p - t) / n = [2, 4]
        assert!(grads.get(p).unwrap().max_abs_diff(&Matrix::row_vector(&[2.0, 4.0])) < 1e-12);
    }

    #[test]
    fn huber_loss_quadratic_and_linear_regions() {
        let mut tape = Tape::new();
        let p = tape.leaf(Matrix::row_vector(&[0.5, 3.0]));
        let loss = tape.huber_loss(p, Matrix::row_vector(&[0.0, 0.0]), 1.0);
        // elem 0: 0.5*0.25 = 0.125 (quadratic); elem 1: 1*(3-0.5) = 2.5 (linear)
        assert!((scalar(&tape, loss) - (0.125 + 2.5) / 2.0).abs() < 1e-12);
        let grads = tape.backward(loss);
        // grad elem 0: 0.5/2; elem 1: clamp -> 1/2.
        assert!(grads.get(p).unwrap().max_abs_diff(&Matrix::row_vector(&[0.25, 0.5])) < 1e-12);
    }

    #[test]
    fn concat_routes_gradients_to_parts() {
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::row_vector(&[1.0]));
        let b = tape.leaf(Matrix::row_vector(&[2.0, 3.0]));
        let c = tape.concat_cols(&[a, b]);
        // Weight the concatenated vector to distinguish positions.
        let w = tape.leaf(Matrix::col_vector(&[10.0, 100.0, 1000.0]));
        let y = tape.matmul(c, w);
        let s = tape.sum(y);
        let grads = tape.backward(s);
        assert_eq!(grads.get(a).unwrap(), &Matrix::row_vector(&[10.0]));
        assert_eq!(grads.get(b).unwrap(), &Matrix::row_vector(&[100.0, 1000.0]));
    }

    #[test]
    fn slice_scatters_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[1.0, 2.0, 3.0, 4.0]));
        let mid = tape.slice_cols(x, 1, 3);
        let s = tape.sum(mid);
        let grads = tape.backward(s);
        assert_eq!(
            grads.get(x).unwrap(),
            &Matrix::row_vector(&[0.0, 1.0, 1.0, 0.0])
        );
    }

    #[test]
    fn mean_of_nodes_distributes_equally() {
        let mut tape = Tape::new();
        let a = tape.leaf(Matrix::row_vector(&[1.0, 2.0]));
        let b = tape.leaf(Matrix::row_vector(&[3.0, 4.0]));
        let c = tape.leaf(Matrix::row_vector(&[5.0, 6.0]));
        let m = tape.mean_of_nodes(&[a, b, c]);
        assert_eq!(tape.value(m), &Matrix::row_vector(&[3.0, 4.0]));
        let s = tape.sum(m);
        let grads = tape.backward(s);
        for id in [a, b, c] {
            assert!(grads
                .get(id)
                .unwrap()
                .max_abs_diff(&Matrix::filled(1, 2, 1.0 / 3.0))
                < 1e-12);
        }
    }

    #[test]
    fn dropout_masks_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[1.0, 2.0, 3.0]));
        let mask = Matrix::row_vector(&[1.0, 0.0, 1.0]);
        let shift = Matrix::zeros(1, 3);
        let y = tape.dropout(x, mask, 2.0, &shift);
        assert_eq!(tape.value(y), &Matrix::row_vector(&[2.0, 0.0, 6.0]));
        let s = tape.sum(y);
        let grads = tape.backward(s);
        assert_eq!(grads.get(x).unwrap(), &Matrix::row_vector(&[2.0, 0.0, 2.0]));
    }

    #[test]
    fn unused_leaf_has_no_gradient() {
        let mut tape = Tape::new();
        let used = tape.leaf(Matrix::row_vector(&[1.0]));
        let unused = tape.leaf(Matrix::row_vector(&[9.0]));
        let s = tape.sum(used);
        let grads = tape.backward(s);
        assert!(grads.get(unused).is_none());
        assert_eq!(
            grads.get_or_zeros(unused, (1, 1)),
            Matrix::zeros(1, 1)
        );
    }

    #[test]
    fn diamond_dependency_accumulates() {
        // y = x + x ; dy/dx = 2
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[5.0]));
        let y = tape.add(x, x);
        let s = tape.sum(y);
        let grads = tape.backward(s);
        assert_eq!(grads.get(x).unwrap(), &Matrix::row_vector(&[2.0]));
    }

    #[test]
    fn activation_chain_backward() {
        // loss = mean(tanh(selu(x))); verified against finite differences in
        // the gradcheck module; here just confirm shape and finiteness.
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_rows(&[vec![0.3, -0.8], vec![1.2, -2.0]]));
        let h = tape.activate(x, Activation::Selu);
        let t = tape.activate(h, Activation::Tanh);
        let loss = tape.mean(t);
        let grads = tape.backward(loss);
        let g = grads.get(x).unwrap();
        assert_eq!(g.shape(), (2, 2));
        assert!(g.all_finite());
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_rejects_non_scalar() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::row_vector(&[1.0, 2.0]));
        let _ = tape.backward(x);
    }
}
