//! Tape-based reverse-mode automatic differentiation over dense matrices.
//!
//! This crate is the gradient engine behind `bellamy-nn`. It deliberately
//! implements only the operations the Bellamy architecture needs — matrix
//! multiplication, bias broadcast, the SELU/tanh activations, alpha-dropout,
//! column concatenation/slicing, elementwise arithmetic, reductions, and the
//! Huber/MSE losses — as a flat tape of enum nodes:
//!
//! ```
//! use bellamy_autograd::Tape;
//! use bellamy_linalg::Matrix;
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Matrix::from_rows(&[vec![1.0, 2.0]]));
//! let w = tape.leaf(Matrix::from_rows(&[vec![0.5], vec![-0.25]]));
//! let y = tape.matmul(x, w);
//! let loss = tape.mse_loss(y, &Matrix::from_rows(&[vec![3.0]]));
//! let grads = tape.backward(loss);
//! assert!(grads.get(w).is_some());
//! ```
//!
//! The tape is define-by-run like PyTorch, but it is also an **arena**: a
//! training loop keeps one tape alive, calls [`Tape::reset`] each step, and
//! replays the same graph into the retained node storage. Combined with the
//! reusable [`Gradients`] workspace of [`Tape::backward_into`], the
//! steady-state train step performs zero heap allocations (see the
//! [`tape`] module docs for the lifecycle).

pub mod gradcheck;
pub mod ops;
pub mod simd;
pub mod tape;

pub use ops::{fast_exp_slice_in_place, fast_tanh_slice_in_place, Activation};
pub use tape::{Gradients, NodeId, Tape};
