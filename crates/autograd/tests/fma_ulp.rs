//! Fast-tier (FMA-contracted) activation kernels vs the scalar reference.
//!
//! `simd::force_*_slice_fma` contracts the polynomial cores' multiply-adds,
//! so unlike `simd_bitwise.rs` the comparison here is an envelope, not bit
//! identity ([`bellamy_linalg::within_envelope`]): a handful of ULPs for
//! well-conditioned outputs, plus an absolute backstop at the scale where
//! each kernel cancels —
//!
//! - `exp` never cancels: the ULP bound alone must hold (magnitude
//!   `|exact|` keeps the backstop purely relative);
//! - `tanh` forms `(den − num)/(den + num)` with `den ≈ num` near zero, and
//!   SELU forms `e − 1` with `e ≈ 1` there, so both carry unit-scale
//!   rounding noise: magnitude `|exact| + 1` admits an `O(ε)` absolute
//!   difference exactly where that cancellation lives.
//!
//! Special values keep the Exact tier's semantics: NaN stays NaN, the
//! saturating clamps send ±inf to the same finite cell, and zeros keep
//! their sign bitwise. On hardware without FMA the force functions return
//! `false` and the suite passes vacuously.

use bellamy_autograd::ops::{fast_exp, fast_tanh, Activation};
use bellamy_autograd::simd;
use bellamy_linalg::ulp::within_envelope;
use proptest::prelude::*;

const MAX_ULPS: u64 = 8;
const ABS_SLACK: f64 = 16.0 * f64::EPSILON;

/// Envelope assertion for one activation output; `unit_scale` adds the
/// `+1.0` cancellation backstop for tanh/SELU.
fn assert_close(exact: f64, fast: f64, unit_scale: bool, what: &str, x: f64) {
    let magnitude = exact.abs() + if unit_scale { 1.0 } else { 0.0 };
    assert!(
        within_envelope(exact, fast, MAX_ULPS, ABS_SLACK, magnitude),
        "{what}({x:e}): exact {exact:e} vs fast {fast:e}"
    );
    if exact == 0.0 {
        // Zeros keep their sign: the select/sign steps are the exact
        // kernels', only polynomial low bits may drift.
        assert_eq!(exact.to_bits(), fast.to_bits(), "{what}({x:e}) zero sign");
    }
}

/// Lengths 0..=17 cover empty, sub-lane, exact-lane, and ragged tails for
/// both 4-lane (AVX2) and 2-lane (NEON) widths.
fn slices() -> impl Strategy<Value = Vec<f64>> {
    (0usize..18).prop_flat_map(|len| proptest::collection::vec(-750.0f64..750.0, len))
}

proptest! {
    #[test]
    fn exp_slice_fma_within_envelope(xs in slices()) {
        let want: Vec<f64> = xs.iter().map(|&x| fast_exp(x.clamp(-708.0, 708.0))).collect();
        let mut got = xs.clone();
        if simd::force_exp_slice_fma(&mut got) {
            for ((&x, &e), &f) in xs.iter().zip(&want).zip(&got) {
                assert_close(e, f, false, "exp", x);
            }
        }
    }

    #[test]
    fn tanh_slice_fma_within_envelope(xs in slices()) {
        let want: Vec<f64> = xs.iter().map(|&x| fast_tanh(x)).collect();
        let mut got = xs.clone();
        if simd::force_tanh_slice_fma(&mut got) {
            for ((&x, &e), &f) in xs.iter().zip(&want).zip(&got) {
                assert_close(e, f, true, "tanh", x);
            }
        }
    }

    #[test]
    fn selu_slice_fma_within_envelope(xs in slices()) {
        let want: Vec<f64> = xs.iter().map(|&x| Activation::Selu.apply(x)).collect();
        let mut got = xs.clone();
        if simd::force_selu_slice_fma(&mut got) {
            for ((&x, &e), &f) in xs.iter().zip(&want).zip(&got) {
                assert_close(e, f, true, "selu", x);
            }
        }
    }

    /// Near-zero inputs are where tanh/SELU cancel; hammer that band
    /// specifically so the unit-scale backstop is exercised, not just
    /// stated.
    #[test]
    fn near_zero_cancellation_band(xs in proptest::collection::vec(-1e-6f64..1e-6, 1..18)) {
        let want_tanh: Vec<f64> = xs.iter().map(|&x| fast_tanh(x)).collect();
        let mut got = xs.clone();
        if simd::force_tanh_slice_fma(&mut got) {
            for ((&x, &e), &f) in xs.iter().zip(&want_tanh).zip(&got) {
                assert_close(e, f, true, "tanh", x);
            }
        }
        let want_selu: Vec<f64> = xs.iter().map(|&x| Activation::Selu.apply(x)).collect();
        let mut got = xs.clone();
        if simd::force_selu_slice_fma(&mut got) {
            for ((&x, &e), &f) in xs.iter().zip(&want_selu).zip(&got) {
                assert_close(e, f, true, "selu", x);
            }
        }
    }
}

#[test]
fn special_values_keep_exact_semantics() {
    let specials = [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        0.0,
        -0.0,
        f64::MIN_POSITIVE,
        -f64::MIN_POSITIVE,
        5e-324, // smallest subnormal
        -5e-324,
        708.0,
        -708.0,
        709.0, // beyond the exp clamp
        -709.0,
        1.0,
        -1.0,
        f64::MAX,
        f64::MIN,
        0.5, // ragged length (17 = 4*4 + 1)
    ];

    let want: Vec<f64> = specials
        .iter()
        .map(|&x| fast_exp(x.clamp(-708.0, 708.0)))
        .collect();
    let mut got = specials.to_vec();
    if simd::force_exp_slice_fma(&mut got) {
        for ((&x, &e), &f) in specials.iter().zip(&want).zip(&got) {
            assert_close(e, f, false, "exp", x);
        }
    }

    let want: Vec<f64> = specials.iter().map(|&x| fast_tanh(x)).collect();
    let mut got = specials.to_vec();
    if simd::force_tanh_slice_fma(&mut got) {
        for ((&x, &e), &f) in specials.iter().zip(&want).zip(&got) {
            assert_close(e, f, true, "tanh", x);
        }
    }

    let want: Vec<f64> = specials
        .iter()
        .map(|&x| Activation::Selu.apply(x))
        .collect();
    let mut got = specials.to_vec();
    if simd::force_selu_slice_fma(&mut got) {
        for ((&x, &e), &f) in specials.iter().zip(&want).zip(&got) {
            assert_close(e, f, true, "selu", x);
        }
    }
}

#[test]
fn dispatch_routes_to_fma_when_fast_tier_is_active() {
    // When the process resolved the Fast tier, the public slice entry
    // points must produce the forced-FMA results bit for bit (same kernel,
    // same path). This is the Fast-tier mirror of
    // `dispatch_and_force_agree_when_backend_is_simd`.
    use bellamy_linalg::kernels::{active_backend, Backend};
    if active_backend() != Backend::Fma {
        return;
    }
    let xs: Vec<f64> = (0..33).map(|i| (i as f64 - 16.0) * 1.37).collect();

    let mut via_public = xs.clone();
    bellamy_autograd::fast_exp_slice_in_place(&mut via_public);
    let mut via_forced = xs.clone();
    if simd::force_exp_slice_fma(&mut via_forced) {
        let pb: Vec<u64> = via_public.iter().map(|v| v.to_bits()).collect();
        let fb: Vec<u64> = via_forced.iter().map(|v| v.to_bits()).collect();
        assert_eq!(pb, fb);
    }

    let mut via_public = xs.clone();
    bellamy_autograd::fast_tanh_slice_in_place(&mut via_public);
    let mut via_forced = xs;
    if simd::force_tanh_slice_fma(&mut via_forced) {
        let pb: Vec<u64> = via_public.iter().map(|v| v.to_bits()).collect();
        let fb: Vec<u64> = via_forced.iter().map(|v| v.to_bits()).collect();
        assert_eq!(pb, fb);
    }
}
