//! Property-based tests for the autodiff engine: analytic gradients of
//! randomized composite graphs are validated against central differences,
//! and algebraic identities of the backward pass are checked directly.

use bellamy_autograd::gradcheck::assert_gradients_close;
use bellamy_autograd::{Activation, Tape};
use bellamy_linalg::Matrix;
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with values bounded away from the
/// SELU/Huber kinks (|v| in [0.05, 2]).
fn kink_free(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(prop_oneof![0.05f64..2.0, -2.0f64..-0.05], rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_mlp_gradcheck(
        (x, w1, w2) in (1usize..4, 1usize..5, 1usize..5, 1usize..4).prop_flat_map(
            |(b, d, h, o)| (kink_free(b, d), kink_free(d, h), kink_free(h, o))
        ),
        act in prop_oneof![
            Just(Activation::Selu),
            Just(Activation::Tanh),
            Just(Activation::Sigmoid),
        ]
    ) {
        let rows = x.rows();
        let out_cols = w2.cols();
        let target = Matrix::filled(rows, out_cols, 0.3);
        assert_gradients_close(&[x, w1, w2], 1e-3, move |leaves| {
            let mut tape = Tape::new();
            let x = tape.leaf(leaves[0].clone());
            let w1 = tape.leaf(leaves[1].clone());
            let w2 = tape.leaf(leaves[2].clone());
            let h = tape.matmul(x, w1);
            let h = tape.activate(h, act);
            let y = tape.matmul(h, w2);
            let loss = tape.mse_loss(y, &target);
            (tape, vec![x, w1, w2], loss)
        });
    }

    #[test]
    fn sum_of_losses_gradcheck(a in kink_free(2, 3), b in kink_free(2, 3)) {
        // d/da [huber(a) + mse(a ⊙ b)] via both paths must match numerics.
        let t1 = Matrix::filled(2, 3, 0.25);
        let t2 = Matrix::filled(2, 3, -0.4);
        assert_gradients_close(&[a, b], 1e-4, move |leaves| {
            let mut tape = Tape::new();
            let a = tape.leaf(leaves[0].clone());
            let b = tape.leaf(leaves[1].clone());
            let prod = tape.mul(a, b);
            let l1 = tape.huber_loss(a, &t1, 1.0);
            let l2 = tape.mse_loss(prod, &t2);
            let loss = tape.add(l1, l2);
            (tape, vec![a, b], loss)
        });
    }

    #[test]
    fn backward_is_linear_in_seed(x in kink_free(2, 2), alpha in 0.1f64..5.0) {
        // grad(alpha * f) == alpha * grad(f).
        let build = |scale: f64, leaves: &Matrix| {
            let mut tape = Tape::new();
            let x = tape.leaf(leaves.clone());
            let s = tape.activate(x, Activation::Tanh);
            let m = tape.mean(s);
            let scaled = tape.scale(m, scale);
            let g = tape.backward(scaled);
            g.get(x).expect("depends on x").clone()
        };
        let g1 = build(1.0, &x);
        let ga = build(alpha, &x);
        prop_assert!(ga.max_abs_diff(&g1.scale(alpha)) < 1e-10);
    }

    #[test]
    fn grad_accumulates_over_reuse(x in kink_free(1, 3), k in 2usize..6) {
        // y = x + x + ... (k times): dy/dx = k.
        let mut tape = Tape::new();
        let x_id = tape.leaf(x.clone());
        let mut acc = x_id;
        for _ in 1..k {
            acc = tape.add(acc, x_id);
        }
        let s = tape.sum(acc);
        let grads = tape.backward(s);
        let g = grads.get(x_id).expect("gradient exists");
        prop_assert!(g.max_abs_diff(&Matrix::filled(1, 3, k as f64)) < 1e-12);
    }

    #[test]
    fn tape_reset_replay_is_bitwise_identical(
        (x, w1, w2) in (1usize..4, 1usize..5, 1usize..5, 1usize..4).prop_flat_map(
            |(b, d, h, o)| (kink_free(b, d), kink_free(d, h), kink_free(h, o))
        )
    ) {
        use bellamy_autograd::Gradients;
        let target = Matrix::filled(x.rows(), w2.cols(), 0.25);
        let build = |tape: &mut Tape| {
            let xn = tape.leaf_ref(&x);
            let w1n = tape.leaf_ref(&w1);
            let w2n = tape.leaf_ref(&w2);
            let h = tape.matmul(xn, w1n);
            let h = tape.activate(h, Activation::Selu);
            let y = tape.matmul(h, w2n);
            let loss = tape.huber_loss(y, &target, 1.0);
            (xn, w1n, w2n, loss)
        };

        let mut fresh = Tape::new();
        let (fx, fw1, fw2, floss) = build(&mut fresh);
        let fresh_grads = fresh.backward(floss);

        let mut arena = Tape::new();
        let mut ws = Gradients::new();
        for step in 0..3 {
            arena.reset();
            let (ax, aw1, aw2, aloss) = build(&mut arena);
            prop_assert_eq!((ax, aw1, aw2), (fx, fw1, fw2));
            arena.backward_into(aloss, &mut ws);
            prop_assert_eq!(arena.value(aloss), fresh.value(floss), "step {}", step);
            for (arena_id, fresh_id) in [(ax, fx), (aw1, fw1), (aw2, fw2)] {
                prop_assert_eq!(ws.get(arena_id), fresh_grads.get(fresh_id), "step {}", step);
            }
        }
    }

    #[test]
    fn matmul_grad_shapes_match_operands(
        (a, b) in (1usize..5, 1usize..5, 1usize..5).prop_flat_map(
            |(m, k, n)| (kink_free(m, k), kink_free(k, n))
        )
    ) {
        let mut tape = Tape::new();
        let a_id = tape.leaf(a.clone());
        let b_id = tape.leaf(b.clone());
        let c = tape.matmul(a_id, b_id);
        let s = tape.sum(c);
        let grads = tape.backward(s);
        prop_assert_eq!(grads.get(a_id).expect("grad a").shape(), a.shape());
        prop_assert_eq!(grads.get(b_id).expect("grad b").shape(), b.shape());
    }
}
