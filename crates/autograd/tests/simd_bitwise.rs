//! Forced-SIMD bit-identity tests for the activation slice kernels.
//!
//! Unlike the unit tests in `ops`, which exercise whatever backend
//! `BELLAMY_KERNEL` selected, these call `simd::force_*` directly so the
//! vector path is validated even when the process-wide backend is scalar
//! (e.g. the `BELLAMY_KERNEL=scalar` CI job). Every assertion is exact bit
//! equality against the per-element scalar reference. On hardware without a
//! vector unit `force_*` returns `false` and the tests pass vacuously.

use bellamy_autograd::ops::{fast_exp, fast_tanh, Activation};
use bellamy_autograd::simd;
use proptest::prelude::*;

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// Lengths 0..=17 cover empty, sub-lane, exact-lane, and ragged tails for
/// both 4-lane (AVX2) and 2-lane (NEON) widths.
fn slices() -> impl Strategy<Value = Vec<f64>> {
    (0usize..18).prop_flat_map(|len| proptest::collection::vec(-750.0f64..750.0, len))
}

proptest! {
    #[test]
    fn exp_slice_forced_simd_is_bit_identical(xs in slices()) {
        // The slice kernel saturates outside [-708, 708] (documented on
        // `fast_exp_slice_in_place`); `fast_exp` itself defers to libm
        // there, so the reference clamps first.
        let want: Vec<f64> = xs.iter().map(|&x| fast_exp(x.clamp(-708.0, 708.0))).collect();
        let mut got = xs;
        if simd::force_exp_slice(&mut got) {
            prop_assert_eq!(bits(&want), bits(&got));
        }
    }

    #[test]
    fn tanh_slice_forced_simd_is_bit_identical(xs in slices()) {
        let want: Vec<f64> = xs.iter().map(|&x| fast_tanh(x)).collect();
        let mut got = xs;
        if simd::force_tanh_slice(&mut got) {
            prop_assert_eq!(bits(&want), bits(&got));
        }
    }

    #[test]
    fn selu_slice_forced_simd_is_bit_identical(xs in slices()) {
        let want: Vec<f64> = xs.iter().map(|&x| Activation::Selu.apply(x)).collect();
        let mut got = xs;
        if simd::force_selu_slice(&mut got) {
            prop_assert_eq!(bits(&want), bits(&got));
        }
    }
}

#[test]
fn special_values_are_bit_identical() {
    let specials = [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        0.0,
        -0.0,
        f64::MIN_POSITIVE,
        -f64::MIN_POSITIVE,
        5e-324, // smallest subnormal
        -5e-324,
        708.0,
        -708.0,
        709.0, // beyond the exp clamp
        -709.0,
        1.0,
        -1.0,
        f64::MAX,
        f64::MIN,
        // One more element keeps the length ragged (17 = 4*4 + 1).
        0.5,
    ];

    // Slice-kernel semantics: saturating clamp to [-708, 708] before the
    // polynomial core (so ±inf and ±709 land on exp(±708), NaN propagates).
    let want_exp: Vec<f64> = specials
        .iter()
        .map(|&x| fast_exp(x.clamp(-708.0, 708.0)))
        .collect();
    let mut got = specials.to_vec();
    if simd::force_exp_slice(&mut got) {
        assert_eq!(bits(&want_exp), bits(&got), "exp: {specials:?}");
    }

    let want_tanh: Vec<f64> = specials.iter().map(|&x| fast_tanh(x)).collect();
    let mut got = specials.to_vec();
    if simd::force_tanh_slice(&mut got) {
        assert_eq!(bits(&want_tanh), bits(&got), "tanh: {specials:?}");
    }

    let want_selu: Vec<f64> = specials
        .iter()
        .map(|&x| Activation::Selu.apply(x))
        .collect();
    let mut got = specials.to_vec();
    if simd::force_selu_slice(&mut got) {
        assert_eq!(bits(&want_selu), bits(&got), "selu: {specials:?}");
    }
}

#[test]
fn dispatch_and_force_agree_when_backend_is_simd() {
    // Whatever path the public slice functions take, their results must
    // match the forced SIMD path bit for bit (identity is the whole
    // contract of the dispatch layer) — unless the process opted into the
    // Fast tier, whose dispatch intentionally leaves the Exact envelope
    // (covered by `fma_ulp.rs` instead).
    use bellamy_linalg::kernels::{active_backend, Backend};
    if active_backend() == Backend::Fma {
        return;
    }
    let xs: Vec<f64> = (0..33).map(|i| (i as f64 - 16.0) * 1.37).collect();

    let mut via_public = xs.clone();
    bellamy_autograd::fast_exp_slice_in_place(&mut via_public);
    let mut via_forced = xs.clone();
    if simd::force_exp_slice(&mut via_forced) {
        assert_eq!(bits(&via_public), bits(&via_forced));
    }

    let mut via_public = xs.clone();
    bellamy_autograd::fast_tanh_slice_in_place(&mut via_public);
    let mut via_forced = xs;
    if simd::force_tanh_slice(&mut via_forced) {
        assert_eq!(bits(&via_public), bits(&via_forced));
    }
}
