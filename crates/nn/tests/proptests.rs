//! Property-based tests for the NN toolkit: checkpoint canonicity, optimizer
//! behaviour, schedules, and early stopping.

use bellamy_linalg::Matrix;
use bellamy_nn::{
    Adam, AdamConfig, Checkpoint, ConstantLr, CyclicalAnnealingLr, EarlyStopping, Graph, Init,
    LrSchedule, ParamSet, StopDecision,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #[test]
    fn checkpoint_round_trip_arbitrary_tensors(
        data in proptest::collection::vec(-1e6f64..1e6, 1..64),
        rows in 1usize..8,
        trainable in any::<bool>(),
        key in "[a-z]{1,12}",
        value in "[ -~]{0,32}"
    ) {
        // Make the length divisible by rows.
        let cols = data.len() / rows;
        prop_assume!(cols > 0);
        let m = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec());
        let mut ps = ParamSet::new();
        let id = ps.register("w", m);
        ps.get_mut(id).trainable = trainable;
        let mut meta = BTreeMap::new();
        meta.insert(key, value);
        let ck = Checkpoint::new(ps, meta);
        let back = Checkpoint::from_bytes(&ck.to_bytes()).expect("round trip");
        prop_assert_eq!(back.to_bytes(), ck.to_bytes(), "serialization must be canonical");
        let back_id = back.params.find("w").expect("tensor exists");
        prop_assert_eq!(back.params.get(back_id).trainable, trainable);
    }

    #[test]
    fn truncated_checkpoints_never_panic(
        cut in 0usize..64,
        junk in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        let mut ps = ParamSet::new();
        ps.register("w", Matrix::zeros(2, 2));
        let bytes = Checkpoint::new(ps, BTreeMap::new()).to_bytes();
        let cut = cut.min(bytes.len());
        // Any prefix, possibly followed by junk, must decode or error cleanly.
        let mut mangled = bytes[..cut].to_vec();
        mangled.extend_from_slice(&junk);
        let _ = Checkpoint::from_bytes(&mangled);
    }

    #[test]
    fn adam_with_zero_gradient_and_no_decay_is_stationary(
        init_val in -10.0f64..10.0,
        lr in 1e-4f64..1e-1
    ) {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::row_vector(&[init_val]));
        let mut opt = Adam::new(&ps, AdamConfig::with_lr(lr));
        for _ in 0..5 {
            let mut g = Graph::new(&ps);
            let w_node = g.param(w);
            let zero = g.input(Matrix::row_vector(&[0.0]));
            let prod = g.tape.mul(w_node, zero);
            let loss = g.tape.sum(prod);
            let grads = g.backward(loss);
            opt.step(&mut ps, &grads);
        }
        prop_assert!((ps.get(w).value[(0, 0)] - init_val).abs() < 1e-12);
    }

    #[test]
    fn adam_descends_on_quadratic(start in -5.0f64..5.0, target in -5.0f64..5.0) {
        prop_assume!((start - target).abs() > 0.1);
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::row_vector(&[start]));
        let t = Matrix::row_vector(&[target]);
        let mut opt = Adam::new(&ps, AdamConfig::with_lr(0.05));
        let initial_dist = (start - target).abs();
        for _ in 0..300 {
            let mut g = Graph::new(&ps);
            let w_node = g.param(w);
            let loss = g.tape.mse_loss(w_node, &t);
            let grads = g.backward(loss);
            opt.step(&mut ps, &grads);
        }
        let final_dist = (ps.get(w).value[(0, 0)] - target).abs();
        prop_assert!(final_dist < initial_dist, "{start} -> {target}: {final_dist}");
    }

    #[test]
    fn cyclical_schedule_stays_in_bounds(
        max_exp in -3.0f64..-0.5,
        spread in 0.1f64..2.0,
        period in 1usize..500,
        epoch in 0usize..10_000
    ) {
        let max_lr = 10f64.powf(max_exp);
        let min_lr = max_lr / 10f64.powf(spread);
        let s = CyclicalAnnealingLr::new(max_lr, min_lr, period);
        let lr = s.lr_at(epoch);
        prop_assert!(lr >= min_lr - 1e-15 && lr <= max_lr + 1e-12);
    }

    #[test]
    fn constant_schedule_is_constant(lr in 1e-6f64..1.0, e1 in 0usize..9999, e2 in 0usize..9999) {
        let s = ConstantLr(lr);
        prop_assert_eq!(s.lr_at(e1), s.lr_at(e2));
    }

    #[test]
    fn early_stopping_stops_within_patience(
        metrics in proptest::collection::vec(1.0f64..100.0, 1..200),
        patience in 1usize..20
    ) {
        let mut es = EarlyStopping::new(None, patience);
        let mut stale = 0usize;
        for &m in &metrics {
            let best_before = es.best();
            match es.update(m) {
                StopDecision::Stop => {
                    prop_assert!(stale + 1 >= patience);
                    return Ok(());
                }
                StopDecision::Improved => stale = 0,
                StopDecision::Continue => stale += 1,
            }
            prop_assert!(es.best() <= best_before.min(m) + 1e-12);
            prop_assert!(stale < patience, "should have stopped at patience");
        }
    }

    #[test]
    fn init_variance_tracks_fan_in(fan_in in 2usize..128) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(fan_in as u64);
        let m = Init::HeNormal.sample(fan_in, 64, &mut rng);
        let mean = m.mean();
        let var = m.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / (m.len() - 1) as f64;
        let want = 2.0 / fan_in as f64;
        // 64*fan_in samples: generous tolerance.
        prop_assert!((var - want).abs() / want < 0.5, "var {var} vs {want}");
    }
}
