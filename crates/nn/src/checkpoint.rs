//! Binary checkpoint format for model state.
//!
//! Bellamy's workflow is *pre-train → persist → fine-tune elsewhere*
//! (§III-A), so checkpoints must round-trip exactly (bit-identical `f64`
//! weights) and carry model metadata — the scale-out normalization bounds,
//! target scale, and encoder configuration the model needs to be usable in a
//! new process. The format is a small self-describing container:
//!
//! ```text
//! magic  "BLMY"            4 bytes
//! version u32 LE           currently 1
//! n_meta  u32 LE           metadata entries
//!   key_len u32 | key utf8 | val_len u32 | val utf8       (each entry)
//! n_params u32 LE
//!   name_len u32 | name utf8 | trainable u8 |
//!   rows u64 | cols u64 | rows*cols f64 LE                (each tensor)
//! ```

use crate::params::ParamSet;
use bellamy_linalg::Matrix;
use bytes::{Buf, BufMut};
use std::collections::BTreeMap;
use std::path::Path;

const MAGIC: &[u8; 4] = b"BLMY";
const VERSION: u32 = 1;

/// A deserialized checkpoint: parameter values plus string metadata.
#[derive(Debug, Clone, Default)]
pub struct Checkpoint {
    /// Named tensors with their trainability flags.
    pub params: ParamSet,
    /// Free-form key/value metadata (normalization bounds, dims, ...).
    pub metadata: BTreeMap<String, String>,
}

/// Errors arising while decoding a checkpoint.
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Leading magic bytes are wrong — not a checkpoint file.
    BadMagic,
    /// Version not understood by this build.
    UnsupportedVersion(u32),
    /// The byte stream ended early or a length field overflowed it.
    Truncated,
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// Underlying I/O failure (message retained).
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a Bellamy checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint data truncated"),
            CheckpointError::InvalidUtf8 => write!(f, "invalid UTF-8 in checkpoint"),
            CheckpointError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl CheckpointError {
    /// True when the checkpoint's *content* is bad — wrong magic, an
    /// unknown version, truncation, invalid UTF-8 — as opposed to a
    /// transient I/O failure. Content errors are permanent for a given
    /// file: retrying the read cannot help, so callers (the hub's disk
    /// recall) quarantine the file instead of retrying, while `Io` errors
    /// are worth a bounded retry.
    pub fn is_corruption(&self) -> bool {
        match self {
            CheckpointError::BadMagic
            | CheckpointError::UnsupportedVersion(_)
            | CheckpointError::Truncated
            | CheckpointError::InvalidUtf8 => true,
            CheckpointError::Io(_) => false,
        }
    }
}

impl Checkpoint {
    /// Creates a checkpoint from a parameter set and metadata.
    pub fn new(params: ParamSet, metadata: BTreeMap<String, String>) -> Self {
        Self { params, metadata }
    }

    /// Serializes to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.params.num_scalars() * 8);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);

        buf.put_u32_le(self.metadata.len() as u32);
        for (k, v) in &self.metadata {
            put_string(&mut buf, k);
            put_string(&mut buf, v);
        }

        buf.put_u32_le(self.params.len() as u32);
        for (_, p) in self.params.iter() {
            put_string(&mut buf, &p.name);
            buf.put_u8(p.trainable as u8);
            buf.put_u64_le(p.value.rows() as u64);
            buf.put_u64_le(p.value.cols() as u64);
            for &v in p.value.as_slice() {
                buf.put_f64_le(v);
            }
        }
        buf
    }

    /// Deserializes from bytes.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, CheckpointError> {
        if data.remaining() < 8 {
            return Err(CheckpointError::Truncated);
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = data.get_u32_le();
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }

        let n_meta = read_u32(&mut data)? as usize;
        let mut metadata = BTreeMap::new();
        for _ in 0..n_meta {
            let k = read_string(&mut data)?;
            let v = read_string(&mut data)?;
            metadata.insert(k, v);
        }

        let n_params = read_u32(&mut data)? as usize;
        let mut params = ParamSet::new();
        for _ in 0..n_params {
            let name = read_string(&mut data)?;
            if data.remaining() < 1 + 16 {
                return Err(CheckpointError::Truncated);
            }
            let trainable = data.get_u8() != 0;
            let rows = data.get_u64_le() as usize;
            let cols = data.get_u64_le() as usize;
            let count = rows.checked_mul(cols).ok_or(CheckpointError::Truncated)?;
            if data.remaining() < count * 8 {
                return Err(CheckpointError::Truncated);
            }
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(data.get_f64_le());
            }
            let id = params.register(name, Matrix::from_vec(rows, cols, values));
            params.get_mut(id).trainable = trainable;
        }
        Ok(Self { params, metadata })
    }

    /// Writes the checkpoint to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        std::fs::write(path, self.to_bytes()).map_err(|e| CheckpointError::Io(e.to_string()))
    }

    /// Reads a checkpoint from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let data = std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Self::from_bytes(&data)
    }
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn read_u32(data: &mut &[u8]) -> Result<u32, CheckpointError> {
    if data.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    Ok(data.get_u32_le())
}

fn read_string(data: &mut &[u8]) -> Result<String, CheckpointError> {
    let len = read_u32(data)? as usize;
    if data.remaining() < len {
        return Err(CheckpointError::Truncated);
    }
    let bytes = data.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| CheckpointError::InvalidUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_checkpoint() -> Checkpoint {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ps = ParamSet::new();
        ps.register_init("f.l1.weight", 3, 16, Init::HeNormal, &mut rng);
        ps.register_init("f.l1.bias", 1, 16, Init::Zeros, &mut rng);
        ps.register_init("g.l1.weight", 40, 8, Init::HeNormal, &mut rng);
        ps.set_trainable_by_prefix("g.", false);
        let mut meta = BTreeMap::new();
        meta.insert("scale_out.min.0".to_string(), "0.0833333".to_string());
        meta.insert("target_scale".to_string(), "1432.7".to_string());
        Checkpoint::new(ps, meta)
    }

    #[test]
    fn round_trip_is_exact() {
        let ck = sample_checkpoint();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.metadata, ck.metadata);
        assert_eq!(back.params.len(), ck.params.len());
        for (id, p) in ck.params.iter() {
            let q = back.params.get(back.params.find(&p.name).unwrap());
            assert_eq!(q.value, p.value, "tensor {} must be bit-identical", p.name);
            assert_eq!(q.trainable, p.trainable);
            let _ = id;
        }
    }

    #[test]
    fn file_round_trip() {
        let ck = sample_checkpoint();
        let dir = std::env::temp_dir().join("bellamy-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.blmy");
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.metadata, ck.metadata);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_detected() {
        let err = Checkpoint::from_bytes(b"NOPE....rest").unwrap_err();
        assert_eq!(err, CheckpointError::BadMagic);
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample_checkpoint().to_bytes();
        for cut in [5, 9, 20, bytes.len() - 3] {
            let err = Checkpoint::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::InvalidUtf8
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn corruption_classifier_separates_content_from_io() {
        assert!(CheckpointError::BadMagic.is_corruption());
        assert!(CheckpointError::UnsupportedVersion(9).is_corruption());
        assert!(CheckpointError::Truncated.is_corruption());
        assert!(CheckpointError::InvalidUtf8.is_corruption());
        assert!(!CheckpointError::Io("disk on fire".into()).is_corruption());
    }

    #[test]
    fn unsupported_version_detected() {
        let mut bytes = sample_checkpoint().to_bytes();
        bytes[4] = 99; // patch the version field
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert_eq!(err, CheckpointError::UnsupportedVersion(99));
    }

    #[test]
    fn special_floats_survive() {
        let mut ps = ParamSet::new();
        ps.register(
            "w",
            Matrix::row_vector(&[0.0, -0.0, f64::MIN_POSITIVE, f64::MAX, 1e-300]),
        );
        let ck = Checkpoint::new(ps, BTreeMap::new());
        let back = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        let id = back.params.find("w").unwrap();
        let vals = back.params.get(id).value.as_slice().to_vec();
        assert_eq!(vals[2], f64::MIN_POSITIVE);
        assert_eq!(vals[3], f64::MAX);
        assert_eq!(vals[4], 1e-300);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let ck = Checkpoint::default();
        let back = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert!(back.params.is_empty());
        assert!(back.metadata.is_empty());
    }
}
