//! Binary checkpoint format for model state (BLMY v1 + mmap-able v2).
//!
//! Bellamy's workflow is *pre-train → persist → fine-tune elsewhere*
//! (§III-A), so checkpoints must round-trip exactly (bit-identical `f64`
//! weights) and carry model metadata — the scale-out normalization bounds,
//! target scale, and encoder configuration the model needs to be usable in a
//! new process.
//!
//! # On-disk layout
//!
//! **v2** (written by [`Checkpoint::to_bytes`], designed to be consumed
//! *in place* through a read-only memory map — see [`Checkpoint::map`]):
//!
//! ```text
//! offset  size  field
//! ──────  ────  ─────────────────────────────────────────────────────────
//!      0     4  magic "BLMY"
//!      4     4  version u32 LE            (2)
//!      8     8  file_len u64 LE           (total file size; truncation check)
//!     16     8  payload_checksum u64 LE   (FNV-1a over [payload_start, file_len))
//!     24     8  header_checksum u64 LE    (FNV-1a over [32, header_end))
//!     32     4  n_meta u32 LE
//!     36     4  n_params u32 LE
//!     40     …  metadata entries:   key_len u32 | key utf8 | val_len u32 | val utf8
//!      …     …  section table:      name_len u32 | name utf8 | trainable u8 |
//!                                   rows u64 | cols u64 | payload_offset u64
//!  header_end                       (zero padding to the next 64-byte boundary)
//!  payload_start = align64(header_end)
//!      …     …  payloads: rows*cols f64 LE per tensor, every payload_offset
//!               64-byte aligned (zero padding between payloads as needed)
//!  file_len                         (end of the last payload)
//! ```
//!
//! The 64-byte payload alignment is what makes zero-copy serving legal: a
//! memory map's base address is page-aligned, so a 64-byte-aligned *file
//! offset* yields a 64-byte-aligned *pointer* — satisfying the SIMD kernels'
//! 32-byte alignment contract without copying a single element
//! ([`Matrix::from_mapped`]).
//!
//! **v1** (legacy, still fully readable; [`Checkpoint::to_bytes_v1`] can
//! still write it for fixtures/compat): magic, version u32 (1), n_meta +
//! entries, n_params, then per tensor `name | trainable u8 | rows u64 |
//! cols u64 | rows*cols f64 LE` packed with no alignment and no checksums.
//! [`Checkpoint::from_bytes`] dispatches on the version field, so both
//! generations decode through one entry point.
//!
//! # Mmap lifetime contract
//!
//! [`Checkpoint::map`] / [`Checkpoint::map_file`] map the file **once** into
//! an `Arc<Mmap>` shared by every mapped tensor; the `Checkpoint` (and any
//! `Matrix` moved out of its [`ParamSet`]) holds the map alive, and the
//! mapping is released when the last such matrix drops. Checksums are
//! verified *at map time* against the mapped bytes, so a later page fault
//! can only surface data that already hashed correctly. Two properties of
//! the surrounding system make this safe:
//!
//! - checkpoints are **immutable once published** — the writer goes through
//!   an atomic `*.tmp` + fsync + rename ([`Checkpoint::save`]), so a path
//!   never refers to a half-written file and published bytes never change;
//! - the hub's quarantine path **renames** corrupt files rather than
//!   truncating or rewriting them; on Unix a rename leaves the inode (and
//!   therefore every live mapping of it) untouched until the last map
//!   drops.

use crate::params::ParamSet;
use bellamy_linalg::{Advice, Matrix, Mmap};
use bytes::{Buf, BufMut};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"BLMY";
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;

/// Fixed v2 header size: magic + version + file_len + two checksums +
/// n_meta + n_params.
const V2_FIXED_HEADER: usize = 40;
/// Byte offset of the checksummed header region (everything after the
/// checksum fields themselves).
const V2_CHECKSUMMED_FROM: usize = 32;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice (same family the hub's fingerprints use).
fn fnv1a(bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(FNV_OFFSET, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// Rounds up to the next multiple of 64.
#[inline]
fn align64(n: usize) -> usize {
    (n + 63) & !63
}

/// A deserialized checkpoint: parameter values plus string metadata.
///
/// Depending on how it was obtained, the tensors are either owned
/// ([`Checkpoint::from_bytes`] / [`Checkpoint::load`]) or borrowed from a
/// shared read-only file mapping ([`Checkpoint::map`] on a v2 file) — the
/// distinction is invisible to readers and erased by `clone()`.
#[derive(Debug, Clone, Default)]
pub struct Checkpoint {
    /// Named tensors with their trainability flags.
    pub params: ParamSet,
    /// Free-form key/value metadata (normalization bounds, dims, ...).
    pub metadata: BTreeMap<String, String>,
}

/// Errors arising while decoding a checkpoint.
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Leading magic bytes are wrong — not a checkpoint file.
    BadMagic,
    /// Version not understood by this build.
    UnsupportedVersion(u32),
    /// The byte stream ended early, a length field overflowed it, or the
    /// structure is malformed (misaligned payload, duplicate tensor name).
    Truncated,
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// A v2 header or payload checksum did not match the stored value —
    /// the file's bytes were altered after writing.
    ChecksumMismatch,
    /// Underlying I/O failure (message retained).
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a Bellamy checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint data truncated"),
            CheckpointError::InvalidUtf8 => write!(f, "invalid UTF-8 in checkpoint"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl CheckpointError {
    /// True when the checkpoint's *content* is bad — wrong magic, an
    /// unknown version, truncation, invalid UTF-8, a checksum mismatch —
    /// as opposed to a transient I/O failure. Content errors are permanent
    /// for a given file: retrying the read cannot help, so callers (the
    /// hub's disk recall) quarantine the file instead of retrying, while
    /// `Io` errors are worth a bounded retry.
    pub fn is_corruption(&self) -> bool {
        match self {
            CheckpointError::BadMagic
            | CheckpointError::UnsupportedVersion(_)
            | CheckpointError::Truncated
            | CheckpointError::InvalidUtf8
            | CheckpointError::ChecksumMismatch => true,
            CheckpointError::Io(_) => false,
        }
    }
}

/// One parsed v2 section-table entry (tensor locator, no data).
struct Section {
    name: String,
    trainable: bool,
    rows: usize,
    cols: usize,
    offset: usize,
}

/// Fully validated v2 structure: metadata + tensor locators. Both
/// materializers (owned and mapped) consume this.
struct V2Parts {
    metadata: BTreeMap<String, String>,
    sections: Vec<Section>,
}

impl Checkpoint {
    /// Creates a checkpoint from a parameter set and metadata.
    pub fn new(params: ParamSet, metadata: BTreeMap<String, String>) -> Self {
        Self { params, metadata }
    }

    /// Serializes to bytes in the current (v2, mmap-able) layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let meta_size: usize = self
            .metadata
            .iter()
            .map(|(k, v)| 8 + k.len() + v.len())
            .sum();
        let table_size: usize = self
            .params
            .iter()
            .map(|(_, p)| 4 + p.name.len() + 1 + 24)
            .sum();
        let header_end = V2_FIXED_HEADER + meta_size + table_size;
        let payload_start = align64(header_end);

        let mut offsets = Vec::with_capacity(self.params.len());
        let mut cursor = payload_start;
        for (_, p) in self.params.iter() {
            let off = align64(cursor);
            offsets.push(off);
            cursor = off + p.value.len() * 8;
        }
        let file_len = if offsets.is_empty() {
            payload_start
        } else {
            cursor
        };

        let mut buf = vec![0u8; file_len];
        buf[0..4].copy_from_slice(MAGIC);
        buf[4..8].copy_from_slice(&VERSION_V2.to_le_bytes());
        buf[8..16].copy_from_slice(&(file_len as u64).to_le_bytes());
        // [16..32): checksums, patched once the rest of the file is final.
        buf[32..36].copy_from_slice(&(self.metadata.len() as u32).to_le_bytes());
        buf[36..40].copy_from_slice(&(self.params.len() as u32).to_le_bytes());

        let mut w = V2_FIXED_HEADER;
        for (k, v) in &self.metadata {
            write_str_at(&mut buf, &mut w, k);
            write_str_at(&mut buf, &mut w, v);
        }
        for ((_, p), &off) in self.params.iter().zip(&offsets) {
            write_str_at(&mut buf, &mut w, &p.name);
            buf[w] = p.trainable as u8;
            w += 1;
            buf[w..w + 8].copy_from_slice(&(p.value.rows() as u64).to_le_bytes());
            buf[w + 8..w + 16].copy_from_slice(&(p.value.cols() as u64).to_le_bytes());
            buf[w + 16..w + 24].copy_from_slice(&(off as u64).to_le_bytes());
            w += 24;
        }
        debug_assert_eq!(w, header_end);

        for ((_, p), &off) in self.params.iter().zip(&offsets) {
            let mut pos = off;
            for &v in p.value.as_slice() {
                buf[pos..pos + 8].copy_from_slice(&v.to_le_bytes());
                pos += 8;
            }
        }

        let payload_checksum = fnv1a(&buf[payload_start..]);
        let header_checksum = fnv1a(&buf[V2_CHECKSUMMED_FROM..header_end]);
        buf[16..24].copy_from_slice(&payload_checksum.to_le_bytes());
        buf[24..32].copy_from_slice(&header_checksum.to_le_bytes());
        buf
    }

    /// Serializes to bytes in the legacy v1 layout (no alignment, no
    /// checksums). Kept for fixture generation and compat testing; the
    /// production writer is [`Checkpoint::to_bytes`].
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.params.num_scalars() * 8);
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION_V1);

        buf.put_u32_le(self.metadata.len() as u32);
        for (k, v) in &self.metadata {
            put_string(&mut buf, k);
            put_string(&mut buf, v);
        }

        buf.put_u32_le(self.params.len() as u32);
        for (_, p) in self.params.iter() {
            put_string(&mut buf, &p.name);
            buf.put_u8(p.trainable as u8);
            buf.put_u64_le(p.value.rows() as u64);
            buf.put_u64_le(p.value.cols() as u64);
            for &v in p.value.as_slice() {
                buf.put_f64_le(v);
            }
        }
        buf
    }

    /// Deserializes from bytes, dispatching on the version field. Both v1
    /// and v2 blobs decode into fully owned tensors.
    pub fn from_bytes(data: &[u8]) -> Result<Self, CheckpointError> {
        match peek_version(data)? {
            VERSION_V1 => Self::decode_v1(&data[8..]),
            VERSION_V2 => {
                let parts = parse_v2(data)?;
                let mut params = ParamSet::new();
                for s in parts.sections {
                    let count = s.rows * s.cols;
                    let bytes = &data[s.offset..s.offset + count * 8];
                    let mut values = Vec::with_capacity(count);
                    for chunk in bytes.chunks_exact(8) {
                        values.push(f64::from_le_bytes(chunk.try_into().unwrap()));
                    }
                    if params.find(&s.name).is_some() {
                        return Err(CheckpointError::Truncated);
                    }
                    let id = params.register(s.name, Matrix::from_vec(s.rows, s.cols, values));
                    params.get_mut(id).trainable = s.trainable;
                }
                Ok(Self {
                    params,
                    metadata: parts.metadata,
                })
            }
            v => Err(CheckpointError::UnsupportedVersion(v)),
        }
    }

    /// Memory-maps a checkpoint file and decodes it **zero-copy**: for a v2
    /// file, every tensor is a [`Matrix::from_mapped`] view into one shared
    /// `Arc<Mmap>` — no element data is copied, and reads come straight
    /// from the OS page cache. Header and payload checksums are verified
    /// against the mapped bytes before any tensor is handed out.
    ///
    /// A v1 file (which has neither alignment nor checksums) decodes
    /// through the owned path instead — same result, zero-copy property
    /// waived. See the module docs for the mapping lifetime contract.
    pub fn map(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let file = File::open(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Self::map_file(&file)
    }

    /// [`Checkpoint::map`] over an already-opened file handle.
    pub fn map_file(file: &File) -> Result<Self, CheckpointError> {
        let map = Mmap::map(file).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Self::from_map(Arc::new(map))
    }

    /// Decodes a checkpoint from an existing mapping (v2 → mapped tensors,
    /// v1 → owned fallback).
    ///
    /// Access-pattern hints bracket the decode: the checksum validation
    /// inside `parse_v2` streams the whole file front to back, so the map
    /// is advised [`Advice::WillNeed`] + [`Advice::Sequential`] first
    /// (kick off read-in, keep readahead ahead of the checksum cursor);
    /// once validated, the map flips to [`Advice::Random`] — the serving
    /// state touches individual weight pages in no predictable order, and
    /// sequential readahead would only dilute the page cache. Hints are
    /// best-effort no-ops on platforms without `madvise`.
    pub fn from_map(map: Arc<Mmap>) -> Result<Self, CheckpointError> {
        let data = map.as_slice();
        match peek_version(data)? {
            VERSION_V1 => Self::decode_v1(&data[8..]),
            VERSION_V2 => {
                map.advise(Advice::WillNeed);
                map.advise(Advice::Sequential);
                let parts = parse_v2(data)?;
                map.advise(Advice::Random);
                let mut params = ParamSet::new();
                for s in parts.sections {
                    let matrix = Matrix::from_mapped(s.rows, s.cols, Arc::clone(&map), s.offset)
                        .map_err(|_| CheckpointError::Truncated)?;
                    if params.find(&s.name).is_some() {
                        return Err(CheckpointError::Truncated);
                    }
                    let id = params.register(s.name, matrix);
                    params.get_mut(id).trainable = s.trainable;
                }
                Ok(Self {
                    params,
                    metadata: parts.metadata,
                })
            }
            v => Err(CheckpointError::UnsupportedVersion(v)),
        }
    }

    /// The v1 body decoder (`data` starts *after* magic + version).
    fn decode_v1(mut data: &[u8]) -> Result<Self, CheckpointError> {
        let n_meta = read_u32(&mut data)? as usize;
        let mut metadata = BTreeMap::new();
        for _ in 0..n_meta {
            let k = read_string(&mut data)?;
            let v = read_string(&mut data)?;
            metadata.insert(k, v);
        }

        let n_params = read_u32(&mut data)? as usize;
        let mut params = ParamSet::new();
        for _ in 0..n_params {
            let name = read_string(&mut data)?;
            if data.remaining() < 1 + 16 {
                return Err(CheckpointError::Truncated);
            }
            let trainable = data.get_u8() != 0;
            let rows = data.get_u64_le() as usize;
            let cols = data.get_u64_le() as usize;
            let count = rows.checked_mul(cols).ok_or(CheckpointError::Truncated)?;
            if data.remaining() < count * 8 {
                return Err(CheckpointError::Truncated);
            }
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(data.get_f64_le());
            }
            if params.find(&name).is_some() {
                return Err(CheckpointError::Truncated);
            }
            let id = params.register(name, Matrix::from_vec(rows, cols, values));
            params.get_mut(id).trainable = trainable;
        }
        Ok(Self { params, metadata })
    }

    /// Writes the checkpoint to a file **atomically**: the bytes go to
    /// `<path>.tmp` first, are fsynced, and the temp file is renamed over
    /// `path`. A crash at any point leaves either the previous checkpoint
    /// or a stray `.tmp` — never a torn file at the published path.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let result = (|| {
            let mut f = File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if let Err(e) = result {
            std::fs::remove_file(&tmp).ok();
            return Err(CheckpointError::Io(e.to_string()));
        }
        Ok(())
    }

    /// Reads a checkpoint from a file into owned tensors (either version).
    /// For zero-copy recall of v2 files use [`Checkpoint::map`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let data = std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Self::from_bytes(&data)
    }
}

/// Checks the magic and returns the version field.
fn peek_version(data: &[u8]) -> Result<u32, CheckpointError> {
    if data.len() < 8 {
        return Err(CheckpointError::Truncated);
    }
    if &data[0..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    Ok(u32::from_le_bytes(data[4..8].try_into().unwrap()))
}

/// Parses and fully validates a v2 blob: length, both checksums, and the
/// bounds + 64-byte alignment of every payload. On success the returned
/// locators are safe to index `data` with.
fn parse_v2(data: &[u8]) -> Result<V2Parts, CheckpointError> {
    if data.len() < V2_FIXED_HEADER {
        return Err(CheckpointError::Truncated);
    }
    let file_len = u64::from_le_bytes(data[8..16].try_into().unwrap());
    if file_len != data.len() as u64 {
        return Err(CheckpointError::Truncated);
    }
    let payload_checksum = u64::from_le_bytes(data[16..24].try_into().unwrap());
    let header_checksum = u64::from_le_bytes(data[24..32].try_into().unwrap());
    let n_meta = u32::from_le_bytes(data[32..36].try_into().unwrap()) as usize;
    let n_params = u32::from_le_bytes(data[36..40].try_into().unwrap()) as usize;

    let mut rest = &data[V2_FIXED_HEADER..];
    let mut metadata = BTreeMap::new();
    for _ in 0..n_meta {
        let k = read_string(&mut rest)?;
        let v = read_string(&mut rest)?;
        metadata.insert(k, v);
    }
    let mut sections = Vec::with_capacity(n_params);
    for _ in 0..n_params {
        let name = read_string(&mut rest)?;
        if rest.remaining() < 1 + 24 {
            return Err(CheckpointError::Truncated);
        }
        let trainable = rest.get_u8() != 0;
        let rows = rest.get_u64_le() as usize;
        let cols = rest.get_u64_le() as usize;
        let offset = rest.get_u64_le() as usize;
        sections.push(Section {
            name,
            trainable,
            rows,
            cols,
            offset,
        });
    }
    let header_end = data.len() - rest.remaining();
    if fnv1a(&data[V2_CHECKSUMMED_FROM..header_end]) != header_checksum {
        return Err(CheckpointError::ChecksumMismatch);
    }
    let payload_start = align64(header_end);
    if payload_start > data.len() {
        return Err(CheckpointError::Truncated);
    }
    if fnv1a(&data[payload_start..]) != payload_checksum {
        return Err(CheckpointError::ChecksumMismatch);
    }
    for s in &sections {
        let count = s
            .rows
            .checked_mul(s.cols)
            .ok_or(CheckpointError::Truncated)?;
        let bytes = count.checked_mul(8).ok_or(CheckpointError::Truncated)?;
        let end = s
            .offset
            .checked_add(bytes)
            .ok_or(CheckpointError::Truncated)?;
        if s.offset % 64 != 0 || s.offset < payload_start || end > data.len() {
            return Err(CheckpointError::Truncated);
        }
    }
    Ok(V2Parts { metadata, sections })
}

/// Writes `len u32 LE | utf8 bytes` at `*w` into a pre-sized buffer.
fn write_str_at(buf: &mut [u8], w: &mut usize, s: &str) {
    buf[*w..*w + 4].copy_from_slice(&(s.len() as u32).to_le_bytes());
    *w += 4;
    buf[*w..*w + s.len()].copy_from_slice(s.as_bytes());
    *w += s.len();
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn read_u32(data: &mut &[u8]) -> Result<u32, CheckpointError> {
    if data.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    Ok(data.get_u32_le())
}

fn read_string(data: &mut &[u8]) -> Result<String, CheckpointError> {
    let len = read_u32(data)? as usize;
    if data.remaining() < len {
        return Err(CheckpointError::Truncated);
    }
    let bytes = data.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| CheckpointError::InvalidUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_checkpoint() -> Checkpoint {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ps = ParamSet::new();
        ps.register_init("f.l1.weight", 3, 16, Init::HeNormal, &mut rng);
        ps.register_init("f.l1.bias", 1, 16, Init::Zeros, &mut rng);
        ps.register_init("g.l1.weight", 40, 8, Init::HeNormal, &mut rng);
        ps.set_trainable_by_prefix("g.", false);
        let mut meta = BTreeMap::new();
        meta.insert("scale_out.min.0".to_string(), "0.0833333".to_string());
        meta.insert("target_scale".to_string(), "1432.7".to_string());
        Checkpoint::new(ps, meta)
    }

    fn assert_checkpoints_equal(a: &Checkpoint, b: &Checkpoint) {
        assert_eq!(a.metadata, b.metadata);
        assert_eq!(a.params.len(), b.params.len());
        for (_, p) in a.params.iter() {
            let q = b.params.get(b.params.find(&p.name).unwrap());
            assert_eq!(q.value, p.value, "tensor {} must be bit-identical", p.name);
            assert_eq!(q.trainable, p.trainable);
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let ck = sample_checkpoint();
        let back = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_checkpoints_equal(&ck, &back);
    }

    #[test]
    fn v1_blobs_still_decode() {
        let ck = sample_checkpoint();
        let back = Checkpoint::from_bytes(&ck.to_bytes_v1()).unwrap();
        assert_checkpoints_equal(&ck, &back);
    }

    #[test]
    fn v2_payloads_are_64_byte_aligned() {
        let bytes = sample_checkpoint().to_bytes();
        assert_eq!(&bytes[4..8], &2u32.to_le_bytes());
        let n_params = u32::from_le_bytes(bytes[36..40].try_into().unwrap());
        assert_eq!(n_params, 3);
        // Walk the section table and check every stored offset.
        let mut rest = &bytes[V2_FIXED_HEADER..];
        let n_meta = u32::from_le_bytes(bytes[32..36].try_into().unwrap());
        for _ in 0..n_meta {
            let _ = read_string(&mut rest).unwrap();
            let _ = read_string(&mut rest).unwrap();
        }
        for _ in 0..n_params {
            let _ = read_string(&mut rest).unwrap();
            let _ = rest.get_u8();
            let _ = rest.get_u64_le();
            let _ = rest.get_u64_le();
            let offset = rest.get_u64_le();
            assert_eq!(offset % 64, 0, "payload offset {offset} not 64-aligned");
        }
    }

    #[test]
    fn file_round_trip() {
        let ck = sample_checkpoint();
        let dir = std::env::temp_dir().join("bellamy-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.blmy");
        ck.save(&path).unwrap();
        assert!(
            !path.with_extension("blmy.tmp").exists(),
            "atomic save must not leave a temp file"
        );
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.metadata, ck.metadata);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_decode_is_zero_copy_and_bit_identical() {
        let ck = sample_checkpoint();
        let dir = std::env::temp_dir().join("bellamy-ckpt-map-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.blmy");
        ck.save(&path).unwrap();

        let mapped = Checkpoint::map(&path).unwrap();
        assert_checkpoints_equal(&ck, &mapped);
        for (_, p) in mapped.params.iter() {
            assert!(p.value.is_mapped(), "tensor {} should be mapped", p.name);
        }

        // v1 files fall back to owned decode through the same entry point.
        std::fs::write(&path, ck.to_bytes_v1()).unwrap();
        let v1_mapped = Checkpoint::map(&path).unwrap();
        assert_checkpoints_equal(&ck, &v1_mapped);
        for (_, p) in v1_mapped.params.iter() {
            assert!(!p.value.is_mapped(), "v1 decode must be owned");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_detected() {
        let err = Checkpoint::from_bytes(b"NOPE....rest").unwrap_err();
        assert_eq!(err, CheckpointError::BadMagic);
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample_checkpoint().to_bytes();
        for cut in [5, 9, 20, bytes.len() - 3] {
            let err = Checkpoint::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::InvalidUtf8
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
        // v1 truncation still detected through the dispatch path.
        let v1 = sample_checkpoint().to_bytes_v1();
        for cut in [5, 9, 20, v1.len() - 3] {
            let err = Checkpoint::from_bytes(&v1[..cut]).unwrap_err();
            assert!(err.is_corruption(), "v1 cut at {cut}: {err:?}");
        }
    }

    #[test]
    fn payload_bit_flip_detected_by_checksum() {
        let mut bytes = sample_checkpoint().to_bytes();
        let n = bytes.len();
        bytes[n - 5] ^= 0x10; // flip one bit inside the last payload
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert_eq!(err, CheckpointError::ChecksumMismatch);
        assert!(err.is_corruption());
    }

    #[test]
    fn header_bit_flip_detected() {
        let mut bytes = sample_checkpoint().to_bytes();
        bytes[44] ^= 0x01; // inside the first metadata key
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(err.is_corruption(), "unexpected error {err:?}");
    }

    #[test]
    fn corruption_classifier_separates_content_from_io() {
        assert!(CheckpointError::BadMagic.is_corruption());
        assert!(CheckpointError::UnsupportedVersion(9).is_corruption());
        assert!(CheckpointError::Truncated.is_corruption());
        assert!(CheckpointError::InvalidUtf8.is_corruption());
        assert!(CheckpointError::ChecksumMismatch.is_corruption());
        assert!(!CheckpointError::Io("disk on fire".into()).is_corruption());
    }

    #[test]
    fn unsupported_version_detected() {
        let mut bytes = sample_checkpoint().to_bytes();
        bytes[4] = 99; // patch the version field
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert_eq!(err, CheckpointError::UnsupportedVersion(99));
    }

    #[test]
    fn special_floats_survive() {
        let mut ps = ParamSet::new();
        ps.register(
            "w",
            Matrix::row_vector(&[0.0, -0.0, f64::MIN_POSITIVE, f64::MAX, 1e-300]),
        );
        let ck = Checkpoint::new(ps, BTreeMap::new());
        let back = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        let id = back.params.find("w").unwrap();
        let vals = back.params.get(id).value.as_slice().to_vec();
        assert_eq!(vals[2], f64::MIN_POSITIVE);
        assert_eq!(vals[3], f64::MAX);
        assert_eq!(vals[4], 1e-300);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let ck = Checkpoint::default();
        let back = Checkpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert!(back.params.is_empty());
        assert!(back.metadata.is_empty());
        let back_v1 = Checkpoint::from_bytes(&ck.to_bytes_v1()).unwrap();
        assert!(back_v1.params.is_empty());
    }
}
