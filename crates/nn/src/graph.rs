//! Per-step graph builder: binds [`ParamSet`] parameters onto a fresh
//! autodiff tape and maps gradients back to parameter handles.

use crate::params::{ParamId, ParamSet};
use bellamy_autograd::{Gradients, NodeId, Tape};
use bellamy_linalg::Matrix;

/// Gradients keyed by parameter handle.
///
/// Parameters the loss does not depend on (e.g. a frozen branch that was
/// never used in the forward pass) have no entry.
pub struct GradMap {
    by_param: Vec<Option<Matrix>>,
}

impl GradMap {
    /// Gradient for `id`, if the loss depends on it.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.by_param.get(id.index()).and_then(|g| g.as_ref())
    }

    /// Global gradient L2 norm across all present entries.
    pub fn l2_norm(&self) -> f64 {
        self.by_param
            .iter()
            .flatten()
            .map(|g| {
                let n = g.frobenius_norm();
                n * n
            })
            .sum::<f64>()
            .sqrt()
    }
}

/// A one-shot forward graph over a parameter set.
///
/// Parameters are bound lazily: the first [`Graph::param`] call for a handle
/// copies its current value onto the tape as a leaf. After building a scalar
/// loss, [`Graph::backward`] returns a [`GradMap`] the optimizer consumes.
pub struct Graph<'p> {
    /// The underlying tape; exposed so model code can use any tape op.
    pub tape: Tape,
    params: &'p ParamSet,
    bound: Vec<Option<NodeId>>,
}

impl<'p> Graph<'p> {
    /// Starts a new graph over `params`.
    pub fn new(params: &'p ParamSet) -> Self {
        Self { tape: Tape::new(), params, bound: vec![None; params.len()] }
    }

    /// Node for a parameter, binding it as a leaf on first use.
    pub fn param(&mut self, id: ParamId) -> NodeId {
        if let Some(node) = self.bound[id.index()] {
            return node;
        }
        let node = self.tape.leaf(self.params.get(id).value.clone());
        self.bound[id.index()] = Some(node);
        node
    }

    /// Registers a constant input (no gradient is reported for it).
    pub fn input(&mut self, value: Matrix) -> NodeId {
        self.tape.leaf(value)
    }

    /// Forward value of any node.
    pub fn value(&self, node: NodeId) -> &Matrix {
        self.tape.value(node)
    }

    /// Runs the backward sweep from the scalar `loss` node and gathers
    /// gradients for every bound parameter.
    pub fn backward(&self, loss: NodeId) -> GradMap {
        let grads: Gradients = self.tape.backward(loss);
        let by_param = self
            .bound
            .iter()
            .map(|slot| slot.and_then(|node| grads.get(node).cloned()))
            .collect();
        GradMap { by_param }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn param_binding_is_idempotent() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::row_vector(&[1.0, 2.0]));
        let mut g = Graph::new(&ps);
        let n1 = g.param(w);
        let n2 = g.param(w);
        assert_eq!(n1, n2, "same parameter must map to one leaf");
        assert_eq!(g.tape.len(), 1);
    }

    #[test]
    fn gradients_route_to_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamSet::new();
        let w = ps.register_init("w", 2, 1, Init::HeNormal, &mut rng);
        let unused = ps.register_init("u", 2, 2, Init::HeNormal, &mut rng);

        let mut g = Graph::new(&ps);
        let x = g.input(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let w_node = g.param(w);
        let y = g.tape.matmul(x, w_node);
        let loss = g.tape.mse_loss(y, Matrix::col_vector(&[1.0, 1.0]));
        let grads = g.backward(loss);

        assert!(grads.get(w).is_some());
        assert!(grads.get(unused).is_none());
        assert!(grads.l2_norm() > 0.0);
    }

    #[test]
    fn param_uses_current_value() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::row_vector(&[2.0]));
        ps.get_mut(w).value = Matrix::row_vector(&[5.0]);
        let mut g = Graph::new(&ps);
        let node = g.param(w);
        assert_eq!(g.value(node)[(0, 0)], 5.0);
    }
}
