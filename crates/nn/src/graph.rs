//! Per-step graph builder: binds [`ParamSet`] parameters onto an autodiff
//! tape and maps gradients back to parameter handles.
//!
//! Training loops should recycle one [`GraphArena`] across steps
//! ([`Graph::from_arena`] / [`Graph::into_arena`]): the underlying tape then
//! replays into retained storage, parameters are rebound by copying into
//! existing arena leaves (no per-step cloning or allocation), and
//! [`Graph::backward_into`] reuses a [`GradWorkspace`] so the whole
//! forward/backward round trip is allocation-free once warm.

use crate::params::{ParamId, ParamSet};
use bellamy_autograd::{Gradients, NodeId, Tape};
use bellamy_linalg::Matrix;

/// Gradients keyed by parameter handle.
///
/// Parameters the loss does not depend on (e.g. a frozen branch that was
/// never used in the forward pass) have no entry.
#[derive(Default)]
pub struct GradMap {
    by_param: Vec<Option<Matrix>>,
}

impl GradMap {
    /// Gradient for `id`, if the loss depends on it.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.by_param.get(id.index()).and_then(|g| g.as_ref())
    }

    /// Global gradient L2 norm across all present entries.
    pub fn l2_norm(&self) -> f64 {
        self.by_param
            .iter()
            .flatten()
            .map(|g| {
                let n = g.frobenius_norm();
                n * n
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Overwrites this map with the gradients of every bound parameter,
    /// reusing entry storage of matching shape.
    fn fill(&mut self, bound: &[Option<NodeId>], grads: &Gradients) {
        self.by_param.resize_with(bound.len(), || None);
        self.by_param.truncate(bound.len());
        for (entry, slot) in self.by_param.iter_mut().zip(bound) {
            match slot.and_then(|node| grads.get(node)) {
                Some(g) => match entry {
                    Some(m) if m.shape() == g.shape() => m.copy_from(g),
                    _ => *entry = Some(g.clone()),
                },
                None => *entry = None,
            }
        }
    }

    /// In-place `self += alpha * other`, entrywise over present entries.
    ///
    /// Entries present in `other` but absent here are cloned in (scaled);
    /// this is the deterministic reduction kernel for data-parallel shards.
    pub fn axpy(&mut self, alpha: f64, other: &GradMap) {
        if self.by_param.len() < other.by_param.len() {
            self.by_param.resize_with(other.by_param.len(), || None);
        }
        for (entry, src) in self.by_param.iter_mut().zip(other.by_param.iter()) {
            match (entry, src) {
                (Some(m), Some(g)) => m.axpy(alpha, g),
                (entry @ None, Some(g)) => {
                    let mut m = g.clone();
                    m.fill(0.0);
                    m.axpy(alpha, g);
                    *entry = Some(m);
                }
                (_, None) => {}
            }
        }
    }

    /// Scales every present entry in place.
    pub fn scale(&mut self, alpha: f64) {
        for entry in self.by_param.iter_mut().flatten() {
            entry.scale_in_place(alpha);
        }
    }
}

/// Recycled storage for [`Graph`]: the tape arena plus the parameter-binding
/// table. Obtain one with [`Graph::into_arena`] and rebuild the next step's
/// graph with [`Graph::from_arena`].
#[derive(Default)]
pub struct GraphArena {
    tape: Tape,
    bound: Vec<Option<NodeId>>,
}

/// A reusable gradient workspace for [`Graph::backward_into`]: the tape-side
/// [`Gradients`] plus the parameter-keyed [`GradMap`], both retained across
/// steps.
#[derive(Default)]
pub struct GradWorkspace {
    grads: Gradients,
    map: GradMap,
}

impl GradWorkspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The parameter-keyed gradients of the last backward sweep.
    pub fn map(&self) -> &GradMap {
        &self.map
    }

    /// Mutable access (used by shard reduction).
    pub fn map_mut(&mut self) -> &mut GradMap {
        &mut self.map
    }
}

/// A forward graph over a parameter set.
///
/// Parameters are bound lazily: the first [`Graph::param`] call for a handle
/// copies its current value onto the tape as a leaf. After building a scalar
/// loss, [`Graph::backward`] returns a [`GradMap`] the optimizer consumes.
pub struct Graph<'p> {
    /// The underlying tape; exposed so model code can use any tape op.
    pub tape: Tape,
    params: &'p ParamSet,
    bound: Vec<Option<NodeId>>,
}

impl<'p> Graph<'p> {
    /// Starts a new graph over `params` with fresh storage.
    pub fn new(params: &'p ParamSet) -> Self {
        Self::from_arena(GraphArena::default(), params)
    }

    /// Starts a graph over `params` reusing a recycled arena: the tape
    /// replays into retained node storage and parameter rebinding copies
    /// values without allocating.
    pub fn from_arena(arena: GraphArena, params: &'p ParamSet) -> Self {
        let GraphArena {
            mut tape,
            mut bound,
        } = arena;
        tape.reset();
        bound.clear();
        bound.resize(params.len(), None);
        Self {
            tape,
            params,
            bound,
        }
    }

    /// Releases the graph's storage for reuse by the next step.
    pub fn into_arena(self) -> GraphArena {
        GraphArena {
            tape: self.tape,
            bound: self.bound,
        }
    }

    /// Node for a parameter, binding it as a leaf on first use.
    pub fn param(&mut self, id: ParamId) -> NodeId {
        if let Some(node) = self.bound[id.index()] {
            return node;
        }
        let node = self.tape.leaf_ref(&self.params.get(id).value);
        self.bound[id.index()] = Some(node);
        node
    }

    /// Registers a constant input (no gradient is reported for it).
    pub fn input(&mut self, value: Matrix) -> NodeId {
        self.tape.leaf(value)
    }

    /// Registers a constant input by reference, copying it into arena
    /// storage (no allocation once warm).
    pub fn input_ref(&mut self, value: &Matrix) -> NodeId {
        self.tape.leaf_ref(value)
    }

    /// Forward value of any node.
    pub fn value(&self, node: NodeId) -> &Matrix {
        self.tape.value(node)
    }

    /// Runs the backward sweep from the scalar `loss` node and gathers
    /// gradients for every bound parameter into a fresh [`GradMap`].
    /// Prefer [`Graph::backward_into`] in loops.
    pub fn backward(&self, loss: NodeId) -> GradMap {
        let mut ws = GradWorkspace::new();
        self.backward_into(loss, &mut ws);
        ws.map
    }

    /// Runs the backward sweep into a reusable workspace; allocation-free
    /// once the workspace is warm.
    pub fn backward_into(&self, loss: NodeId, ws: &mut GradWorkspace) {
        self.tape.backward_into(loss, &mut ws.grads);
        ws.map.fill(&self.bound, &ws.grads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn param_binding_is_idempotent() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::row_vector(&[1.0, 2.0]));
        let mut g = Graph::new(&ps);
        let n1 = g.param(w);
        let n2 = g.param(w);
        assert_eq!(n1, n2, "same parameter must map to one leaf");
        assert_eq!(g.tape.len(), 1);
    }

    #[test]
    fn gradients_route_to_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamSet::new();
        let w = ps.register_init("w", 2, 1, Init::HeNormal, &mut rng);
        let unused = ps.register_init("u", 2, 2, Init::HeNormal, &mut rng);

        let mut g = Graph::new(&ps);
        let x = g.input(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let w_node = g.param(w);
        let y = g.tape.matmul(x, w_node);
        let loss = g.tape.mse_loss(y, &Matrix::col_vector(&[1.0, 1.0]));
        let grads = g.backward(loss);

        assert!(grads.get(w).is_some());
        assert!(grads.get(unused).is_none());
        assert!(grads.l2_norm() > 0.0);
    }

    #[test]
    fn param_uses_current_value() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::row_vector(&[2.0]));
        ps.get_mut(w).value = Matrix::row_vector(&[5.0]);
        let mut g = Graph::new(&ps);
        let node = g.param(w);
        assert_eq!(g.value(node)[(0, 0)], 5.0);
    }

    #[test]
    fn arena_recycling_matches_fresh_graphs() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ps = ParamSet::new();
        let w = ps.register_init("w", 3, 2, Init::HeNormal, &mut rng);
        let x = Matrix::from_fn(5, 3, |i, j| (i + j) as f64 * 0.2 - 0.5);
        let t = Matrix::zeros(5, 2);

        let run = |g: &mut Graph<'_>| {
            let xn = g.input_ref(&x);
            let wn = g.param(w);
            let y = g.tape.matmul(xn, wn);
            g.tape.mse_loss(y, &t)
        };

        let mut fresh = Graph::new(&ps);
        let loss_fresh = run(&mut fresh);
        let grads_fresh = fresh.backward(loss_fresh);

        let mut arena = GraphArena::default();
        let mut ws = GradWorkspace::new();
        for step in 0..4 {
            let mut g = Graph::from_arena(arena, &ps);
            let loss = run(&mut g);
            g.backward_into(loss, &mut ws);
            assert_eq!(
                g.value(loss),
                fresh.value(loss_fresh),
                "step {step}: recycled graph must be bit-identical"
            );
            assert_eq!(ws.map().get(w), grads_fresh.get(w), "step {step}");
            arena = g.into_arena();
        }
    }

    #[test]
    fn gradmap_axpy_reduces_shards() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::row_vector(&[1.0, -2.0]));

        let shard = |scale: f64| {
            let mut g = Graph::new(&ps);
            let wn = g.param(w);
            let s = g.tape.scale(wn, scale);
            let loss = g.tape.sum(s);
            g.backward(loss)
        };
        let mut total = shard(1.0);
        total.scale(0.25);
        total.axpy(0.75, &shard(3.0));
        // d/dw [0.25 * sum(w) + 0.75 * sum(3w)] = 0.25 + 2.25 = 2.5.
        assert!(
            total
                .get(w)
                .unwrap()
                .max_abs_diff(&Matrix::row_vector(&[2.5, 2.5]))
                < 1e-12
        );
    }
}
