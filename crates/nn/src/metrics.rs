//! Prediction-quality metrics used across training loops and the evaluation
//! harness: MAE (the paper's stopping/aggregation metric, Fig. 6/8) and MRE
//! (Fig. 5), plus RMSE for completeness.

/// Mean absolute error between predictions and targets.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn mae(pred: &[f64], target: &[f64]) -> f64 {
    check(pred, target);
    pred.iter()
        .zip(target.iter())
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Mean relative error `|p - t| / max(|t|, eps)` — the paper's Fig. 5 metric.
///
/// The guard `eps = 1e-9` protects against zero targets (never produced by
/// the workload generators, but the harness should not be able to divide by
/// zero regardless).
pub fn mre(pred: &[f64], target: &[f64]) -> f64 {
    check(pred, target);
    pred.iter()
        .zip(target.iter())
        .map(|(p, t)| (p - t).abs() / t.abs().max(1e-9))
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error.
pub fn rmse(pred: &[f64], target: &[f64]) -> f64 {
    check(pred, target);
    (pred
        .iter()
        .zip(target.iter())
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64)
        .sqrt()
}

fn check(pred: &[f64], target: &[f64]) {
    assert_eq!(
        pred.len(),
        target.len(),
        "prediction/target length mismatch"
    );
    assert!(!pred.is_empty(), "metrics need at least one sample");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_known_value() {
        assert_eq!(mae(&[1.0, 2.0, 3.0], &[2.0, 2.0, 1.0]), 1.0);
    }

    #[test]
    fn mre_known_value() {
        // |10-8|/8 = 0.25, |6-4|/4 = 0.5 -> mean 0.375
        assert!((mre(&[10.0, 6.0], &[8.0, 4.0]) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn rmse_known_value() {
        assert!((rmse(&[3.0, 0.0], &[0.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_is_zero() {
        let v = [10.0, 20.0, 30.0];
        assert_eq!(mae(&v, &v), 0.0);
        assert_eq!(mre(&v, &v), 0.0);
        assert_eq!(rmse(&v, &v), 0.0);
    }

    #[test]
    fn mre_guards_zero_targets() {
        let v = mre(&[1.0], &[0.0]);
        assert!(v.is_finite());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = mae(&[1.0], &[1.0, 2.0]);
    }
}
