//! Neural-network toolkit for the Bellamy reproduction.
//!
//! Provides the pieces the paper's prototype takes from PyTorch + Ignite:
//!
//! - named, freezable parameters ([`params::ParamSet`]),
//! - a per-step graph builder binding parameters onto an autodiff tape
//!   ([`graph::Graph`]),
//! - linear layers with configurable activation ([`linear::Linear`]),
//! - He / LeCun / Xavier initialization ([`init::Init`]),
//! - standard and alpha dropout ([`dropout`]) — alpha dropout is the
//!   SELU-compatible variant Bellamy uses inside its auto-encoder,
//! - Adam with L2 weight decay ([`optim::Adam`]),
//! - learning-rate schedules including the cyclical annealing used for
//!   fine-tuning ([`schedule`]),
//! - the paper's early-stopping rule (MAE target or patience) ([`stopping`]),
//! - a self-describing binary checkpoint format ([`checkpoint`]) so a
//!   pre-trained model can be "preserved appropriately and fine-tuned as
//!   needed" (§III-A).

pub mod checkpoint;
pub mod dropout;
pub mod graph;
pub mod init;
pub mod linear;
pub mod metrics;
pub mod optim;
pub mod params;
pub mod schedule;
pub mod stopping;

pub use bellamy_autograd::Activation;
pub use checkpoint::{Checkpoint, CheckpointError};
pub use dropout::{AlphaDropout, Dropout};
pub use graph::{GradMap, GradWorkspace, Graph, GraphArena};
pub use init::Init;
pub use linear::Linear;
pub use optim::{Adam, AdamConfig, AnyOptimizer, OptimizerChoice, Sgd, SgdConfig};
pub use params::{ParamId, ParamSet};
pub use schedule::{ConstantLr, CyclicalAnnealingLr, LrSchedule};
pub use stopping::{EarlyStopping, StopDecision};
