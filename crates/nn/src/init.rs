//! Weight initialization schemes.
//!
//! The paper initializes all layers "using He initialization in accordance
//! with the specific properties of our activation" (§IV-A). For SELU the
//! self-normalizing property additionally motivates LeCun-normal; both are
//! provided (plus Xavier for completeness) and the choice is part of the
//! model configuration so it can be ablated.

use bellamy_linalg::Matrix;
use rand::{Rng, RngExt};

/// Initialization scheme for a `fan_in x fan_out` weight matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// `N(0, 2 / fan_in)` — He et al. 2015, matched to ReLU-family gains.
    HeNormal,
    /// `N(0, 1 / fan_in)` — the initialization SELU's fixed point assumes.
    LecunNormal,
    /// `N(0, 2 / (fan_in + fan_out))` — Glorot & Bengio 2010.
    XavierNormal,
    /// All zeros (bias vectors).
    Zeros,
}

impl Init {
    /// Draws a `rows x cols` matrix. `rows` is treated as `fan_in`, matching
    /// the `x @ W` layout used throughout the workspace.
    pub fn sample(self, rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
        match self {
            Init::Zeros => Matrix::zeros(rows, cols),
            _ => {
                let std = self.std_dev(rows, cols);
                let mut m = Matrix::zeros(rows, cols);
                for v in m.as_mut_slice() {
                    *v = normal(rng) * std;
                }
                m
            }
        }
    }

    /// The standard deviation this scheme uses for the given shape.
    pub fn std_dev(self, fan_in: usize, fan_out: usize) -> f64 {
        let fan_in = fan_in.max(1) as f64;
        let fan_out = fan_out.max(1) as f64;
        match self {
            Init::HeNormal => (2.0 / fan_in).sqrt(),
            Init::LecunNormal => (1.0 / fan_in).sqrt(),
            Init::XavierNormal => (2.0 / (fan_in + fan_out)).sqrt(),
            Init::Zeros => 0.0,
        }
    }

    /// Name used in checkpoints and config printouts.
    pub fn name(self) -> &'static str {
        match self {
            Init::HeNormal => "he_normal",
            Init::LecunNormal => "lecun_normal",
            Init::XavierNormal => "xavier_normal",
            Init::Zeros => "zeros",
        }
    }
}

/// Standard normal draw via the Box–Muller transform.
///
/// Implemented locally so the `nn` crate does not need `rand_distr`.
pub fn normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.random::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue; // avoid ln(0)
        }
        let u2: f64 = rng.random::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_is_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = Init::Zeros.sample(4, 5, &mut rng);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn he_normal_statistics() {
        let mut rng = StdRng::seed_from_u64(7);
        let fan_in = 64;
        let m = Init::HeNormal.sample(fan_in, 400, &mut rng);
        let mean = m.mean();
        let var = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (m.len() - 1) as f64;
        let want = 2.0 / fan_in as f64;
        assert!(mean.abs() < 0.01, "mean {mean} too far from 0");
        assert!(
            (var - want).abs() / want < 0.1,
            "variance {var} too far from {want}"
        );
    }

    #[test]
    fn lecun_scales_down_relative_to_he() {
        assert!(
            (Init::LecunNormal.std_dev(16, 8) * 2.0f64.sqrt() - Init::HeNormal.std_dev(16, 8))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn xavier_symmetric_in_fans() {
        assert_eq!(
            Init::XavierNormal.std_dev(8, 24),
            Init::XavierNormal.std_dev(24, 8)
        );
    }

    #[test]
    fn normal_draw_statistics() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Init::HeNormal.sample(3, 3, &mut StdRng::seed_from_u64(5));
        let b = Init::HeNormal.sample(3, 3, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
