//! Named, freezable model parameters.
//!
//! Bellamy's fine-tuning protocol manipulates parameters by *component*:
//! freeze the auto-encoder, train `z` first, unfreeze `f` later, or re-init
//! whole components for the `partial-reset` / `full-reset` reuse strategies
//! (§IV-C2). Dotted names (`"f.l1.weight"`) make those group operations
//! simple prefix matches.

use crate::init::Init;
use bellamy_linalg::Matrix;
use rand::Rng;

/// Handle to a parameter inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Raw index of this parameter within its set.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One named tensor with a trainability flag.
#[derive(Debug, Clone)]
pub struct Parameter {
    /// Dotted path, e.g. `"z.l1.weight"`.
    pub name: String,
    /// Current value.
    pub value: Matrix,
    /// Whether the optimizer may update this parameter.
    pub trainable: bool,
}

/// An ordered collection of named parameters.
///
/// Order is creation order and is stable, which the optimizer relies on for
/// its per-parameter moment buffers.
#[derive(Debug, Clone, Default)]
pub struct ParamSet {
    params: Vec<Parameter>,
}

impl ParamSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an explicit initial value.
    ///
    /// # Panics
    /// Panics if the name is already taken.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let name = name.into();
        assert!(
            self.find(&name).is_none(),
            "duplicate parameter name: {name}"
        );
        self.params.push(Parameter {
            name,
            value,
            trainable: true,
        });
        ParamId(self.params.len() - 1)
    }

    /// Registers a `rows x cols` parameter drawn from `init`.
    pub fn register_init(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        init: Init,
        rng: &mut impl Rng,
    ) -> ParamId {
        let value = init.sample(rows, cols, rng);
        self.register(name, value)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Parameter by handle.
    pub fn get(&self, id: ParamId) -> &Parameter {
        &self.params[id.0]
    }

    /// Mutable parameter by handle.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Parameter {
        &mut self.params[id.0]
    }

    /// Looks a parameter up by exact name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.params.iter().position(|p| p.name == name).map(ParamId)
    }

    /// Iterates over `(id, parameter)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Parameter)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// Ids whose names start with `prefix`.
    pub fn ids_with_prefix(&self, prefix: &str) -> Vec<ParamId> {
        self.iter()
            .filter(|(_, p)| p.name.starts_with(prefix))
            .map(|(id, _)| id)
            .collect()
    }

    /// Sets the `trainable` flag on every parameter whose name starts with
    /// `prefix`. Returns how many parameters were affected.
    pub fn set_trainable_by_prefix(&mut self, prefix: &str, trainable: bool) -> usize {
        let mut n = 0;
        for p in &mut self.params {
            if p.name.starts_with(prefix) {
                p.trainable = trainable;
                n += 1;
            }
        }
        n
    }

    /// Sets the `trainable` flag on every parameter.
    pub fn set_all_trainable(&mut self, trainable: bool) {
        for p in &mut self.params {
            p.trainable = trainable;
        }
    }

    /// Re-initializes (same shape, fresh draw) every parameter whose name
    /// starts with `prefix`. Used by the `partial-reset` / `full-reset`
    /// reuse strategies. Returns how many parameters were re-drawn.
    pub fn reinit_by_prefix(&mut self, prefix: &str, init: Init, rng: &mut impl Rng) -> usize {
        let mut n = 0;
        for p in &mut self.params {
            if p.name.starts_with(prefix) {
                let (rows, cols) = p.value.shape();
                p.value = init.sample(rows, cols, rng);
                n += 1;
            }
        }
        n
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// True when every scalar in every parameter is finite. Training loops
    /// use this as their divergence sentinel after each optimizer step: it
    /// is a read-only scan of a few thousand scalars (negligible next to a
    /// forward pass) and catches NaN/∞ before the next forward spreads it.
    pub fn values_all_finite(&self) -> bool {
        self.params.iter().all(|p| p.value.all_finite())
    }

    /// A content fingerprint over parameter names and exact value bits
    /// (FNV-1a). Two sets with the same layout and bit-identical weights
    /// fingerprint equally, which is what model registries use to assert
    /// that a recalled snapshot is *the same* model — not merely a close
    /// one — after a persistence round trip.
    pub fn values_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for p in &self.params {
            // Length-prefix the name and value stream so differently
            // partitioned layouts cannot alias by concatenation.
            for b in (p.name.len() as u64).to_le_bytes() {
                mix(b);
            }
            for b in p.name.as_bytes() {
                mix(*b);
            }
            for b in (p.value.len() as u64).to_le_bytes() {
                mix(b);
            }
            for v in p.value.as_slice() {
                for b in v.to_bits().to_le_bytes() {
                    mix(b);
                }
            }
        }
        h
    }

    /// Copies all values from `other`, matching parameters by name.
    ///
    /// Returns an error naming the first mismatch (missing name or shape
    /// difference). Trainability flags are left untouched.
    pub fn load_values_from(&mut self, other: &ParamSet) -> Result<(), String> {
        for p in &mut self.params {
            let src = other
                .params
                .iter()
                .find(|q| q.name == p.name)
                .ok_or_else(|| format!("parameter {} missing from source", p.name))?;
            if src.value.shape() != p.value.shape() {
                return Err(format!(
                    "parameter {} shape mismatch: {:?} vs {:?}",
                    p.name,
                    p.value.shape(),
                    src.value.shape()
                ));
            }
            // In place: snapshot/restore cycles in training loops must not
            // churn the allocator.
            p.value.copy_from(&src.value);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_set() -> ParamSet {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        ps.register_init("f.l1.weight", 3, 16, Init::HeNormal, &mut rng);
        ps.register_init("f.l2.weight", 16, 8, Init::HeNormal, &mut rng);
        ps.register_init("z.l1.weight", 28, 8, Init::HeNormal, &mut rng);
        ps.register_init("z.l2.weight", 8, 1, Init::HeNormal, &mut rng);
        ps
    }

    #[test]
    fn register_and_lookup() {
        let ps = sample_set();
        assert_eq!(ps.len(), 4);
        let id = ps.find("z.l1.weight").unwrap();
        assert_eq!(ps.get(id).value.shape(), (28, 8));
        assert!(ps.find("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let mut ps = ParamSet::new();
        ps.register("w", Matrix::zeros(1, 1));
        ps.register("w", Matrix::zeros(1, 1));
    }

    #[test]
    fn prefix_freeze() {
        let mut ps = sample_set();
        let n = ps.set_trainable_by_prefix("f.", false);
        assert_eq!(n, 2);
        assert!(!ps.get(ps.find("f.l1.weight").unwrap()).trainable);
        assert!(ps.get(ps.find("z.l1.weight").unwrap()).trainable);
        assert_eq!(ps.ids_with_prefix("z.").len(), 2);
    }

    #[test]
    fn reinit_changes_values_keeps_shapes() {
        let mut ps = sample_set();
        let id = ps.find("z.l2.weight").unwrap();
        let before = ps.get(id).value.clone();
        let mut rng = StdRng::seed_from_u64(99);
        let n = ps.reinit_by_prefix("z.", Init::HeNormal, &mut rng);
        assert_eq!(n, 2);
        let after = &ps.get(id).value;
        assert_eq!(after.shape(), before.shape());
        assert!(
            before.max_abs_diff(after) > 1e-9,
            "reinit must redraw values"
        );
    }

    #[test]
    fn load_values_by_name() {
        let mut dst = sample_set();
        let mut src = sample_set();
        // Perturb the source then load it back into dst.
        for (_, p) in src.iter() {
            assert!(p.value.all_finite());
        }
        src.get_mut(src.find("f.l1.weight").unwrap())
            .value
            .fill(7.0);
        dst.load_values_from(&src).unwrap();
        let id = dst.find("f.l1.weight").unwrap();
        assert_eq!(dst.get(id).value, Matrix::filled(3, 16, 7.0));
    }

    #[test]
    fn load_values_reports_mismatch() {
        let mut dst = sample_set();
        let mut src = ParamSet::new();
        src.register("f.l1.weight", Matrix::zeros(2, 2));
        let err = dst.load_values_from(&src).unwrap_err();
        assert!(
            err.contains("shape mismatch") || err.contains("missing"),
            "{err}"
        );
    }

    #[test]
    fn values_fingerprint_tracks_content() {
        let a = sample_set();
        let b = sample_set();
        assert_eq!(
            a.values_fingerprint(),
            b.values_fingerprint(),
            "identical sets fingerprint equally"
        );
        let mut c = sample_set();
        let id = c.find("z.l2.weight").unwrap();
        c.get_mut(id).value.fill(0.5);
        assert_ne!(a.values_fingerprint(), c.values_fingerprint());
        // Trainability is not content.
        let mut d = sample_set();
        d.set_trainable_by_prefix("f.", false);
        assert_eq!(a.values_fingerprint(), d.values_fingerprint());
    }

    #[test]
    fn num_scalars_counts_all() {
        let ps = sample_set();
        assert_eq!(ps.num_scalars(), 3 * 16 + 16 * 8 + 28 * 8 + 8);
    }
}
