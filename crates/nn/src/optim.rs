//! The Adam optimizer with L2 weight decay.
//!
//! Matches PyTorch's `torch.optim.Adam` semantics, which the paper's
//! prototype uses (Table I): weight decay is added to the gradient
//! (`g += wd * θ`) rather than decoupled à la AdamW, and bias-corrected
//! first/second moments drive the update.

use crate::graph::GradMap;
use crate::params::{ParamId, ParamSet};
use bellamy_linalg::Matrix;

/// Hyperparameters for [`Adam`].
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Step size.
    pub lr: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical fuzz in the denominator.
    pub eps: f64,
    /// L2 penalty coefficient added to gradients.
    pub weight_decay: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

impl AdamConfig {
    /// Config with the given learning rate, PyTorch-default betas/eps.
    pub fn with_lr(lr: f64) -> Self {
        Self {
            lr,
            ..Self::default()
        }
    }

    /// Builder-style weight decay.
    pub fn weight_decay(mut self, wd: f64) -> Self {
        self.weight_decay = wd;
        self
    }
}

/// Adam state: per-parameter moment estimates in registration order.
pub struct Adam {
    config: AdamConfig,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: u64,
}

impl Adam {
    /// Creates optimizer state shaped after `params`.
    pub fn new(params: &ParamSet, config: AdamConfig) -> Self {
        let m = params
            .iter()
            .map(|(_, p)| Matrix::zeros(p.value.rows(), p.value.cols()))
            .collect();
        let v = params
            .iter()
            .map(|(_, p)| Matrix::zeros(p.value.rows(), p.value.cols()))
            .collect();
        Self { config, m, v, t: 0 }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.config.lr
    }

    /// Replaces the learning rate (used by schedules between epochs).
    pub fn set_lr(&mut self, lr: f64) {
        self.config.lr = lr;
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Resets moment estimates and the step counter (used when a component
    /// is re-initialized by the reset reuse strategies).
    pub fn reset_state(&mut self) {
        for m in &mut self.m {
            m.fill(0.0);
        }
        for v in &mut self.v {
            v.fill(0.0);
        }
        self.t = 0;
    }

    /// Applies one update. Frozen parameters and parameters without a
    /// gradient entry are skipped (their moment buffers stay untouched).
    ///
    /// The update is one fused in-place pass per parameter — moment update,
    /// bias correction, and weight write happen in a single traversal with
    /// no temporaries, so stepping is allocation-free.
    pub fn step(&mut self, params: &mut ParamSet, grads: &GradMap) {
        self.t += 1;
        let t = self.t as i32;
        let c = self.config;
        let bias1 = 1.0 - c.beta1.powi(t);
        let bias2 = 1.0 - c.beta2.powi(t);

        for idx in 0..params.len() {
            let id = ParamId(idx);
            let Some(grad) = grads.get(id) else { continue };
            let p = params.get_mut(id);
            if !p.trainable {
                continue;
            }
            let g = grad.as_slice();
            let value = p.value.as_mut_slice();
            let ms = self.m[idx].as_mut_slice();
            let vs = self.v[idx].as_mut_slice();
            for (((w, &gi), m), v) in value.iter_mut().zip(g).zip(ms).zip(vs) {
                let gi = gi + c.weight_decay * *w;
                let mi = c.beta1 * *m + (1.0 - c.beta1) * gi;
                let vi = c.beta2 * *v + (1.0 - c.beta2) * gi * gi;
                *m = mi;
                *v = vi;
                let m_hat = mi / bias1;
                let v_hat = vi / bias2;
                *w -= c.lr * m_hat / (v_hat.sqrt() + c.eps);
            }
        }
    }
}

/// Hyperparameters for [`Sgd`].
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Step size.
    pub lr: f64,
    /// Classical momentum coefficient (0 disables momentum).
    pub momentum: f64,
    /// L2 penalty coefficient added to gradients.
    pub weight_decay: f64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            lr: 1e-2,
            momentum: 0.9,
            weight_decay: 0.0,
        }
    }
}

/// Stochastic gradient descent with classical momentum.
///
/// Not used by the paper's training recipe (Table I prescribes Adam); kept
/// for the optimizer ablation (`repro -- ablate-optimizer`) and as a
/// reference implementation.
pub struct Sgd {
    config: SgdConfig,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Creates optimizer state shaped after `params`.
    pub fn new(params: &ParamSet, config: SgdConfig) -> Self {
        let velocity = params
            .iter()
            .map(|(_, p)| Matrix::zeros(p.value.rows(), p.value.cols()))
            .collect();
        Self { config, velocity }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f64 {
        self.config.lr
    }

    /// Replaces the learning rate.
    pub fn set_lr(&mut self, lr: f64) {
        self.config.lr = lr;
    }

    /// Applies one update (skips frozen / gradient-less parameters) as a
    /// single fused in-place pass per parameter.
    pub fn step(&mut self, params: &mut ParamSet, grads: &GradMap) {
        let c = self.config;
        for idx in 0..params.len() {
            let id = ParamId(idx);
            let Some(grad) = grads.get(id) else { continue };
            let p = params.get_mut(id);
            if !p.trainable {
                continue;
            }
            let g = grad.as_slice();
            let value = p.value.as_mut_slice();
            let vs = self.velocity[idx].as_mut_slice();
            for ((w, &gi), v) in value.iter_mut().zip(g).zip(vs) {
                let gi = gi + c.weight_decay * *w;
                let vi = c.momentum * *v + gi;
                *v = vi;
                *w -= c.lr * vi;
            }
        }
    }
}

/// Which optimizer a training loop should instantiate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerChoice {
    /// Adam with the given weight decay (the paper's choice).
    Adam,
    /// SGD with the given momentum.
    Sgd {
        /// Momentum coefficient.
        momentum: f64,
    },
}

/// Runtime-dispatched optimizer, so training loops can switch per config.
pub enum AnyOptimizer {
    /// Adam state.
    Adam(Adam),
    /// SGD state.
    Sgd(Sgd),
}

impl AnyOptimizer {
    /// Builds the chosen optimizer with a shared `(lr, weight_decay)` pair.
    pub fn build(choice: OptimizerChoice, params: &ParamSet, lr: f64, weight_decay: f64) -> Self {
        match choice {
            OptimizerChoice::Adam => AnyOptimizer::Adam(Adam::new(
                params,
                AdamConfig::with_lr(lr).weight_decay(weight_decay),
            )),
            OptimizerChoice::Sgd { momentum } => AnyOptimizer::Sgd(Sgd::new(
                params,
                SgdConfig {
                    lr,
                    momentum,
                    weight_decay,
                },
            )),
        }
    }

    /// Applies one update.
    pub fn step(&mut self, params: &mut ParamSet, grads: &GradMap) {
        match self {
            AnyOptimizer::Adam(o) => o.step(params, grads),
            AnyOptimizer::Sgd(o) => o.step(params, grads),
        }
    }

    /// Replaces the learning rate.
    pub fn set_lr(&mut self, lr: f64) {
        match self {
            AnyOptimizer::Adam(o) => o.set_lr(lr),
            AnyOptimizer::Sgd(o) => o.set_lr(lr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::params::ParamSet;
    use bellamy_linalg::Matrix;

    /// One gradient step on f(w) = w^2 from w=1: the bias-corrected first
    /// step moves by exactly lr (Adam's signSGD-like first step).
    #[test]
    fn first_step_magnitude_is_lr() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::row_vector(&[1.0]));
        let mut opt = Adam::new(&ps, AdamConfig::with_lr(0.1));

        let mut g = Graph::new(&ps);
        let w_node = g.param(w);
        let sq = g.tape.mul(w_node, w_node);
        let loss = g.tape.sum(sq);
        let grads = g.backward(loss);
        opt.step(&mut ps, &grads);

        let v = ps.get(w).value[(0, 0)];
        assert!((v - 0.9).abs() < 1e-6, "expected ~0.9, got {v}");
    }

    #[test]
    fn converges_on_quadratic() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::row_vector(&[5.0, -3.0]));
        let target = Matrix::row_vector(&[2.0, 1.0]);
        let mut opt = Adam::new(&ps, AdamConfig::with_lr(0.05));
        for _ in 0..2000 {
            let mut g = Graph::new(&ps);
            let w_node = g.param(w);
            let loss = g.tape.mse_loss(w_node, &target);
            let grads = g.backward(loss);
            opt.step(&mut ps, &grads);
        }
        assert!(ps.get(w).value.max_abs_diff(&target) < 1e-3);
    }

    #[test]
    fn frozen_params_do_not_move() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::row_vector(&[1.0]));
        ps.set_trainable_by_prefix("w", false);
        let mut opt = Adam::new(&ps, AdamConfig::with_lr(0.1));
        let mut g = Graph::new(&ps);
        let w_node = g.param(w);
        let sq = g.tape.mul(w_node, w_node);
        let loss = g.tape.sum(sq);
        let grads = g.backward(loss);
        opt.step(&mut ps, &grads);
        assert_eq!(ps.get(w).value[(0, 0)], 1.0);
    }

    #[test]
    fn weight_decay_shrinks_stationary_weights() {
        // With zero data gradient, weight decay alone must pull weights in.
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::row_vector(&[4.0]));
        let dummy = ps.register("d", Matrix::row_vector(&[1.0]));
        let mut opt = Adam::new(&ps, AdamConfig::with_lr(0.01).weight_decay(0.1));
        for _ in 0..200 {
            let mut g = Graph::new(&ps);
            // Loss touches w with zero-weighted contribution so a gradient
            // entry (of zeros) exists: 0 * w.
            let w_node = g.param(w);
            let zero = g.input(Matrix::row_vector(&[0.0]));
            let wz = g.tape.mul(w_node, zero);
            let d_node = g.param(dummy);
            let combined = g.tape.add(wz, d_node);
            let loss = g.tape.sum(combined);
            let grads = g.backward(loss);
            opt.step(&mut ps, &grads);
        }
        let v = ps.get(w).value[(0, 0)];
        assert!(v < 4.0, "weight decay must shrink the weight, got {v}");
    }

    #[test]
    fn set_lr_and_reset_state() {
        let ps = ParamSet::new();
        let mut opt = Adam::new(&ps, AdamConfig::with_lr(0.5));
        assert_eq!(opt.lr(), 0.5);
        opt.set_lr(0.001);
        assert_eq!(opt.lr(), 0.001);
        opt.reset_state();
        assert_eq!(opt.steps(), 0);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::row_vector(&[5.0, -3.0]));
        let target = Matrix::row_vector(&[2.0, 1.0]);
        let mut opt = Sgd::new(
            &ps,
            SgdConfig {
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 0.0,
            },
        );
        for _ in 0..500 {
            let mut g = Graph::new(&ps);
            let w_node = g.param(w);
            let loss = g.tape.mse_loss(w_node, &target);
            let grads = g.backward(loss);
            opt.step(&mut ps, &grads);
        }
        assert!(ps.get(w).value.max_abs_diff(&target) < 1e-3);
    }

    #[test]
    fn sgd_without_momentum_first_step_is_lr_times_grad() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::row_vector(&[1.0]));
        let mut opt = Sgd::new(
            &ps,
            SgdConfig {
                lr: 0.1,
                momentum: 0.0,
                weight_decay: 0.0,
            },
        );
        // loss = w^2, grad = 2w = 2 at w=1; step = 0.1*2 = 0.2.
        let mut g = Graph::new(&ps);
        let w_node = g.param(w);
        let sq = g.tape.mul(w_node, w_node);
        let loss = g.tape.sum(sq);
        let grads = g.backward(loss);
        opt.step(&mut ps, &grads);
        assert!((ps.get(w).value[(0, 0)] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn sgd_momentum_accelerates_constant_gradient() {
        // Under a constant gradient, momentum accumulates: the second step
        // moves further than the first.
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::row_vector(&[0.0]));
        let mut opt = Sgd::new(
            &ps,
            SgdConfig {
                lr: 0.1,
                momentum: 0.9,
                weight_decay: 0.0,
            },
        );
        let mut positions = vec![0.0];
        for _ in 0..3 {
            let mut g = Graph::new(&ps);
            let w_node = g.param(w);
            let slope = g.input(Matrix::row_vector(&[1.0]));
            let lin = g.tape.mul(w_node, slope);
            let loss = g.tape.sum(lin); // grad = 1 regardless of w
            let grads = g.backward(loss);
            opt.step(&mut ps, &grads);
            positions.push(ps.get(w).value[(0, 0)]);
        }
        let step1 = positions[0] - positions[1];
        let step2 = positions[1] - positions[2];
        assert!(
            step2 > step1 * 1.5,
            "momentum should accelerate: {positions:?}"
        );
    }

    #[test]
    fn any_optimizer_dispatch() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::row_vector(&[4.0]));
        for choice in [
            OptimizerChoice::Adam,
            OptimizerChoice::Sgd { momentum: 0.5 },
        ] {
            let mut ps_local = ps.clone();
            let mut opt = AnyOptimizer::build(choice, &ps_local, 0.05, 0.0);
            opt.set_lr(0.02);
            for _ in 0..50 {
                let mut g = Graph::new(&ps_local);
                let w_node = g.param(w);
                let loss = g.tape.mse_loss(w_node, &Matrix::row_vector(&[1.0]));
                let grads = g.backward(loss);
                opt.step(&mut ps_local, &grads);
            }
            let v = ps_local.get(w).value[(0, 0)];
            assert!(v < 4.0, "{choice:?} must make progress, got {v}");
        }
    }
}
