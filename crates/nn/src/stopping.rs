//! The paper's fine-tuning stopping rule.
//!
//! Table I: fine-tuning terminates when the runtime-prediction MAE drops to
//! a target (5 seconds in the paper) **or** when the error has not improved
//! for a patience window (1000 epochs), whichever comes first, with a hard
//! epoch cap. The best state seen so far is what gets used for inference,
//! so the tracker also reports improvements.

/// What the training loop should do after reporting a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopDecision {
    /// New best metric: snapshot the model, keep training.
    Improved,
    /// No improvement, but within patience: keep training.
    Continue,
    /// Target reached or patience exhausted: stop.
    Stop,
}

/// Early-stopping state machine.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    target: Option<f64>,
    patience: usize,
    best: f64,
    epochs_since_best: usize,
}

impl EarlyStopping {
    /// `target`: stop as soon as the metric is `<=` this value (`None` to
    /// disable). `patience`: stop after this many consecutive epochs without
    /// improvement.
    pub fn new(target: Option<f64>, patience: usize) -> Self {
        assert!(patience > 0, "patience must be positive");
        Self {
            target,
            patience,
            best: f64::INFINITY,
            epochs_since_best: 0,
        }
    }

    /// The paper's fine-tuning criterion: MAE ≤ 5 s or 1000 epochs without
    /// improvement.
    pub fn paper_default() -> Self {
        Self::new(Some(5.0), 1000)
    }

    /// Best metric observed so far.
    pub fn best(&self) -> f64 {
        self.best
    }

    /// Feeds this epoch's metric and returns the decision.
    pub fn update(&mut self, metric: f64) -> StopDecision {
        let improved = metric < self.best;
        if improved {
            self.best = metric;
            self.epochs_since_best = 0;
        } else {
            self.epochs_since_best += 1;
        }

        if let Some(t) = self.target {
            if metric <= t {
                return StopDecision::Stop;
            }
        }
        if self.epochs_since_best >= self.patience {
            return StopDecision::Stop;
        }
        if improved {
            StopDecision::Improved
        } else {
            StopDecision::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stops_at_target() {
        let mut es = EarlyStopping::new(Some(5.0), 100);
        assert_eq!(es.update(50.0), StopDecision::Improved);
        assert_eq!(es.update(4.9), StopDecision::Stop);
    }

    #[test]
    fn target_boundary_inclusive() {
        let mut es = EarlyStopping::new(Some(5.0), 100);
        assert_eq!(es.update(5.0), StopDecision::Stop);
    }

    #[test]
    fn patience_exhaustion_stops() {
        let mut es = EarlyStopping::new(None, 3);
        assert_eq!(es.update(10.0), StopDecision::Improved);
        assert_eq!(es.update(11.0), StopDecision::Continue);
        assert_eq!(es.update(12.0), StopDecision::Continue);
        assert_eq!(es.update(10.5), StopDecision::Stop);
    }

    #[test]
    fn improvement_resets_patience() {
        let mut es = EarlyStopping::new(None, 2);
        assert_eq!(es.update(10.0), StopDecision::Improved);
        assert_eq!(es.update(11.0), StopDecision::Continue);
        assert_eq!(es.update(9.0), StopDecision::Improved);
        assert_eq!(es.update(9.5), StopDecision::Continue);
        assert_eq!(es.update(9.4), StopDecision::Stop);
        assert_eq!(es.best(), 9.0);
    }

    #[test]
    fn best_tracks_minimum() {
        let mut es = EarlyStopping::new(None, 100);
        for m in [30.0, 20.0, 25.0, 15.0, 18.0] {
            es.update(m);
        }
        assert_eq!(es.best(), 15.0);
    }
}
