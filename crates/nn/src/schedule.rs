//! Learning-rate schedules.
//!
//! Fine-tuning in the paper uses "cyclical annealing in (1e−2, 1e−3)"
//! (Table I): the rate starts at the upper bound and anneals towards the
//! lower bound within each cycle, then restarts — keeping late fine-tuning
//! steps gentle while periodically allowing larger corrective moves.

/// A learning-rate schedule indexed by epoch.
pub trait LrSchedule {
    /// Learning rate to use for `epoch` (0-based).
    fn lr_at(&self, epoch: usize) -> f64;
}

/// A fixed learning rate.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLr(pub f64);

impl LrSchedule for ConstantLr {
    fn lr_at(&self, _epoch: usize) -> f64 {
        self.0
    }
}

/// Cosine-annealed cyclical schedule between `max_lr` and `min_lr`.
///
/// Within each cycle of `period` epochs the rate follows half a cosine from
/// `max_lr` down to `min_lr`; the next cycle restarts at `max_lr`.
#[derive(Debug, Clone, Copy)]
pub struct CyclicalAnnealingLr {
    max_lr: f64,
    min_lr: f64,
    period: usize,
}

impl CyclicalAnnealingLr {
    /// Creates a schedule annealing in `(min_lr, max_lr)` with the given
    /// cycle length.
    ///
    /// # Panics
    /// Panics if bounds are inverted or `period == 0`.
    pub fn new(max_lr: f64, min_lr: f64, period: usize) -> Self {
        assert!(max_lr >= min_lr, "max_lr {max_lr} below min_lr {min_lr}");
        assert!(period > 0, "period must be positive");
        Self {
            max_lr,
            min_lr,
            period,
        }
    }

    /// The paper's fine-tuning schedule: `(1e-2, 1e-3)` with a 100-epoch
    /// cycle.
    pub fn paper_default() -> Self {
        Self::new(1e-2, 1e-3, 100)
    }
}

impl LrSchedule for CyclicalAnnealingLr {
    fn lr_at(&self, epoch: usize) -> f64 {
        let pos = (epoch % self.period) as f64 / self.period as f64;
        let cos = (std::f64::consts::PI * pos).cos(); // 1 -> -1 over the cycle
        self.min_lr + 0.5 * (self.max_lr - self.min_lr) * (1.0 + cos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = ConstantLr(0.42);
        assert_eq!(s.lr_at(0), 0.42);
        assert_eq!(s.lr_at(10_000), 0.42);
    }

    #[test]
    fn cycle_starts_at_max_and_anneals_down() {
        let s = CyclicalAnnealingLr::new(1e-2, 1e-3, 100);
        assert!((s.lr_at(0) - 1e-2).abs() < 1e-12);
        // Just before the cycle ends the rate must be close to the minimum.
        assert!(s.lr_at(99) < 1.1e-3);
        // The cycle restarts.
        assert!((s.lr_at(100) - 1e-2).abs() < 1e-12);
    }

    #[test]
    fn monotone_within_cycle() {
        let s = CyclicalAnnealingLr::new(1e-2, 1e-3, 50);
        let mut prev = f64::INFINITY;
        for e in 0..50 {
            let lr = s.lr_at(e);
            assert!(
                lr <= prev + 1e-15,
                "schedule must not increase within a cycle"
            );
            assert!(
                (1e-3 - 1e-12..=1e-2 + 1e-12).contains(&lr),
                "lr {lr} escaped bounds"
            );
            prev = lr;
        }
    }

    #[test]
    fn midpoint_is_mean_of_bounds() {
        let s = CyclicalAnnealingLr::new(0.01, 0.001, 100);
        let mid = s.lr_at(50);
        assert!((mid - 0.0055).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "below min_lr")]
    fn inverted_bounds_rejected() {
        let _ = CyclicalAnnealingLr::new(1e-3, 1e-2, 10);
    }
}
