//! Fully-connected layer with an optional bias and a fused activation.

use crate::graph::Graph;
use crate::init::Init;
use crate::params::{ParamId, ParamSet};
use bellamy_autograd::{Activation, NodeId};
use rand::Rng;

/// A linear layer `y = act(x W (+ b))` with `W: in_dim x out_dim`.
///
/// The paper's §IV-A prescribes an activation after *every* linear layer
/// (SELU everywhere, tanh on the decoder output), so the activation is part
/// of the layer; pass [`Activation::Identity`] to opt out. The auto-encoder
/// layers "waive additional additive biases", hence the `bias` switch.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: ParamId,
    bias: Option<ParamId>,
    activation: Activation,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a new layer's parameters under `name` (creating
    /// `{name}.weight` and optionally `{name}.bias`).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        with_bias: bool,
        activation: Activation,
        init: Init,
        rng: &mut impl Rng,
    ) -> Self {
        let weight = params.register_init(format!("{name}.weight"), in_dim, out_dim, init, rng);
        let bias = with_bias
            .then(|| params.register_init(format!("{name}.bias"), 1, out_dim, Init::Zeros, rng));
        Self {
            weight,
            bias,
            activation,
            in_dim,
            out_dim,
        }
    }

    /// Reconstructs the handle from an existing parameter set (after loading
    /// a checkpoint). Returns `None` when the expected names are missing.
    pub fn from_existing(params: &ParamSet, name: &str, activation: Activation) -> Option<Self> {
        let weight = params.find(&format!("{name}.weight"))?;
        let bias = params.find(&format!("{name}.bias"));
        let (in_dim, out_dim) = params.get(weight).value.shape();
        Some(Self {
            weight,
            bias,
            activation,
            in_dim,
            out_dim,
        })
    }

    /// Applies the layer within a graph as one fused tape op (matmul, bias
    /// broadcast, and activation in a single output pass — bit-identical to
    /// the unfused chain, forward and backward).
    pub fn forward(&self, g: &mut Graph<'_>, x: NodeId) -> NodeId {
        let w = g.param(self.weight);
        let b = self.bias.map(|b| g.param(b));
        g.tape.linear(x, w, b, self.activation)
    }

    /// Weight parameter handle.
    pub fn weight(&self) -> ParamId {
        self.weight
    }

    /// Bias parameter handle, when the layer has one.
    pub fn bias(&self) -> Option<ParamId> {
        self.bias
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellamy_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamSet::new();
        let layer = Linear::new(
            &mut ps,
            "l",
            3,
            4,
            true,
            Activation::Identity,
            Init::HeNormal,
            &mut rng,
        );
        assert_eq!(layer.in_dim(), 3);
        assert_eq!(layer.out_dim(), 4);
        assert!(ps.find("l.weight").is_some());
        assert!(ps.find("l.bias").is_some());

        let mut g = Graph::new(&ps);
        let x = g.input(Matrix::zeros(5, 3));
        let y = layer.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (5, 4));
        // Zero input + zero bias -> zero output for identity activation.
        assert_eq!(g.value(y).sum(), 0.0);
    }

    #[test]
    fn no_bias_layer_registers_single_param() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamSet::new();
        let layer = Linear::new(
            &mut ps,
            "enc",
            40,
            8,
            false,
            Activation::Selu,
            Init::HeNormal,
            &mut rng,
        );
        assert!(layer.bias().is_none());
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn activation_is_applied() {
        let mut ps = ParamSet::new();
        ps.register("l.weight", Matrix::from_rows(&[vec![1.0]]));
        let layer = Linear::from_existing(&ps, "l", Activation::Relu).unwrap();
        let mut g = Graph::new(&ps);
        let x = g.input(Matrix::col_vector(&[-3.0, 2.0]));
        let y = layer.forward(&mut g, x);
        assert_eq!(g.value(y), &Matrix::col_vector(&[0.0, 2.0]));
    }

    #[test]
    fn from_existing_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ps = ParamSet::new();
        let original = Linear::new(
            &mut ps,
            "f.l1",
            3,
            16,
            true,
            Activation::Selu,
            Init::HeNormal,
            &mut rng,
        );
        let restored = Linear::from_existing(&ps, "f.l1", Activation::Selu).unwrap();
        assert_eq!(restored.weight(), original.weight());
        assert_eq!(restored.bias(), original.bias());
        assert_eq!(restored.in_dim(), 3);
        assert_eq!(restored.out_dim(), 16);
        assert!(Linear::from_existing(&ps, "missing", Activation::Selu).is_none());
    }
}
