//! Standard and alpha dropout.
//!
//! Bellamy's auto-encoder uses *alpha-dropout* (Klambauer et al. 2017)
//! between its layers: the SELU-compatible variant that drops activations to
//! `α' = -λα` (SELU's negative saturation value) instead of zero and then
//! applies an affine correction so the self-normalizing property — zero mean,
//! unit variance — survives training noise.

use crate::graph::Graph;
use bellamy_autograd::NodeId;
use rand::{Rng, RngExt};

/// Standard (inverted) dropout: zeroes with probability `p`, scales kept
/// activations by `1/(1-p)` so expectations match at inference time.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    p: f64,
}

impl Dropout {
    /// Creates a dropout layer dropping with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability {p} outside [0,1)"
        );
        Self { p }
    }

    /// Drop probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Applies dropout. Identity when `training` is false or `p == 0`.
    pub fn forward(
        &self,
        g: &mut Graph<'_>,
        x: NodeId,
        training: bool,
        rng: &mut impl Rng,
    ) -> NodeId {
        if !training || self.p == 0.0 {
            return x;
        }
        let keep = 1.0 - self.p;
        g.tape
            .dropout(x, 1.0 / keep, 0.0, 0.0, || bernoulli(keep, rng))
    }
}

/// Alpha dropout for SELU networks.
///
/// With keep probability `q = 1 - p`, dropped units are set to
/// `α' = -λα` and the result is transformed affinely by
/// `a = (q + α'² q (1-q))^{-1/2}` and `b = -a (1-q) α'`, preserving zero mean
/// and unit variance of self-normalized activations.
#[derive(Debug, Clone, Copy)]
pub struct AlphaDropout {
    p: f64,
}

impl AlphaDropout {
    /// Creates an alpha-dropout layer dropping with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability {p} outside [0,1)"
        );
        Self { p }
    }

    /// Drop probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The affine constants `(a, b)` for this drop probability.
    pub fn affine_constants(&self) -> (f64, f64) {
        let q = 1.0 - self.p;
        let alpha_prime = bellamy_autograd::ops::SELU_ALPHA_PRIME;
        let a = (q + alpha_prime * alpha_prime * q * (1.0 - q)).powf(-0.5);
        let b = -a * (1.0 - q) * alpha_prime;
        (a, b)
    }

    /// Applies alpha dropout. Identity when `training` is false or `p == 0`.
    pub fn forward(
        &self,
        g: &mut Graph<'_>,
        x: NodeId,
        training: bool,
        rng: &mut impl Rng,
    ) -> NodeId {
        if !training || self.p == 0.0 {
            return x;
        }
        let q = 1.0 - self.p;
        let (a, b) = self.affine_constants();
        let alpha_prime = bellamy_autograd::ops::SELU_ALPHA_PRIME;
        // y = a·(x⊙mask) + a·α'·(1-mask) + b — the shift is constant, so it
        // maps onto the tape's affine dropout with shift0 = b, shift1 = a·α'.
        g.tape
            .dropout(x, a, b, a * alpha_prime, || bernoulli(q, rng))
    }
}

/// One 0/1 Bernoulli draw keeping with probability `keep`.
fn bernoulli(keep: f64, rng: &mut impl Rng) -> f64 {
    if rng.random::<f64>() < keep {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSet;
    use bellamy_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn constant_input(g: &mut Graph<'_>, rows: usize, cols: usize, v: f64) -> NodeId {
        g.input(Matrix::filled(rows, cols, v))
    }

    #[test]
    fn inference_mode_is_identity() {
        let ps = ParamSet::new();
        let mut g = Graph::new(&ps);
        let x = constant_input(&mut g, 2, 3, 1.5);
        let mut rng = StdRng::seed_from_u64(0);
        let d = Dropout::new(0.5).forward(&mut g, x, false, &mut rng);
        assert_eq!(d, x);
        let a = AlphaDropout::new(0.5).forward(&mut g, x, false, &mut rng);
        assert_eq!(a, x);
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let ps = ParamSet::new();
        let mut g = Graph::new(&ps);
        let x = constant_input(&mut g, 2, 2, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Dropout::new(0.0).forward(&mut g, x, true, &mut rng), x);
        assert_eq!(AlphaDropout::new(0.0).forward(&mut g, x, true, &mut rng), x);
    }

    #[test]
    fn standard_dropout_preserves_expectation() {
        let ps = ParamSet::new();
        let mut g = Graph::new(&ps);
        let x = constant_input(&mut g, 200, 50, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let y = Dropout::new(0.2).forward(&mut g, x, true, &mut rng);
        let mean = g.value(y).mean();
        assert!(
            (mean - 1.0).abs() < 0.02,
            "inverted dropout mean {mean} should be ~1"
        );
    }

    #[test]
    fn alpha_dropout_preserves_mean_and_variance() {
        // Feed standard-normal-ish data; statistics must be approximately
        // preserved (the whole point of alpha dropout).
        let ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        let data = Matrix::from_fn(400, 50, |_, _| crate::init::normal(&mut rng));
        let mut g = Graph::new(&ps);
        let x = g.input(data);
        let y = AlphaDropout::new(0.1).forward(&mut g, x, true, &mut rng);
        let out = g.value(y);
        let mean = out.mean();
        let var = out
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (out.len() - 1) as f64;
        assert!(mean.abs() < 0.02, "alpha dropout mean {mean} should be ~0");
        assert!(
            (var - 1.0).abs() < 0.06,
            "alpha dropout variance {var} should be ~1"
        );
    }

    #[test]
    fn dropped_units_take_alpha_prime_affine_value() {
        let ps = ParamSet::new();
        let mut g = Graph::new(&ps);
        let x = constant_input(&mut g, 30, 30, 3.0);
        let mut rng = StdRng::seed_from_u64(9);
        let layer = AlphaDropout::new(0.5);
        let (a, b) = layer.affine_constants();
        let y = layer.forward(&mut g, x, true, &mut rng);
        let dropped_value = a * bellamy_autograd::ops::SELU_ALPHA_PRIME + b;
        let kept_value = a * 3.0 + b;
        for &v in g.value(y).as_slice() {
            assert!(
                (v - dropped_value).abs() < 1e-9 || (v - kept_value).abs() < 1e-9,
                "unexpected alpha-dropout output {v}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "outside [0,1)")]
    fn rejects_invalid_probability() {
        let _ = Dropout::new(1.0);
    }
}
