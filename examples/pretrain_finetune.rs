//! The full production workflow with model persistence and hyperparameter
//! search: search → pre-train → checkpoint to disk → (later, elsewhere)
//! load → fine-tune → predict. This mirrors how the paper's prototype would
//! serve many users sharing pre-trained models per algorithm (§V).
//!
//! ```sh
//! cargo run --release --example pretrain_finetune
//! ```

use bellamy::prelude::*;

fn main() {
    let data = generate_c3o(&GeneratorConfig::seeded(42));
    let target = data.contexts_for(Algorithm::PageRank)[2];
    let history: Vec<TrainingSample> = data
        .runs_for_algorithm_excluding(Algorithm::PageRank, Some(target.id))
        .iter()
        .map(|r| TrainingSample::from_run(&data.contexts[r.context_id], r))
        .collect();

    // --- Hyperparameter search over the Table I grid ------------------------
    println!("searching 4 configurations from the Table I grid (quick budget) ...");
    let (model, report) = search_pretrain(
        &BellamyConfig::default(),
        &history,
        &SearchSpace::default(),
        4,   // paper: 12 trials; reduced for example runtime
        120, // paper: 2500 epochs
        21,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    )
    .expect("the Table I grid has finite trials");
    for (i, t) in report.trials.iter().enumerate() {
        let marker = if i == report.best_index {
            " <- best"
        } else {
            ""
        };
        println!(
            "  trial {}: dropout {:>4.0}% lr {:<7} wd {:<7} -> val MAE {:>7.1}s{}",
            i + 1,
            t.config.dropout * 100.0,
            format!("{:e}", t.config.lr),
            format!("{:e}", t.config.weight_decay),
            t.val_mae_s,
            marker
        );
    }

    // --- Persist the pre-trained model --------------------------------------
    let dir = std::env::temp_dir().join("bellamy-example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("pagerank.blmy");
    model.save(&path).expect("save checkpoint");
    let size = std::fs::metadata(&path).expect("stat checkpoint").len();
    println!("\ncheckpoint written: {} ({size} bytes)", path.display());

    // --- Later, in another process: load and fine-tune ----------------------
    let mut restored = Bellamy::load(&path).expect("load checkpoint");
    let observed: Vec<TrainingSample> = data
        .runs_for_context(target.id)
        .iter()
        .filter(|r| r.repeat == 0 && [4, 10].contains(&r.scale_out))
        .map(|r| TrainingSample::from_run(target, r))
        .collect();
    let ft = fine_tune(
        &mut restored,
        &observed,
        &FinetuneConfig::default(),
        ReuseStrategy::PartialUnfreeze,
        5,
    );
    println!(
        "fine-tuned the restored model on {} points: {} epochs, {:.1}ms",
        observed.len(),
        ft.epochs,
        ft.elapsed_s * 1e3
    );

    // --- Predict and compare to the held-out truth --------------------------
    let props = context_properties(target);
    println!(
        "\n{:<10} {:>12} {:>12}",
        "scale-out", "predicted", "actual(mean)"
    );
    for x in [2u32, 6, 8, 12] {
        let actual: Vec<f64> = data
            .runs_for_context(target.id)
            .iter()
            .filter(|r| r.scale_out == x)
            .map(|r| r.runtime_s)
            .collect();
        println!(
            "{:<10} {:>10.1}s {:>10.1}s",
            x,
            restored.predict(x as f64, &props),
            actual.iter().sum::<f64>() / actual.len() as f64
        );
    }

    std::fs::remove_file(&path).ok();
}
