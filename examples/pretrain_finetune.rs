//! The full production workflow with model persistence and hyperparameter
//! search: search → pre-train → publish into a disk-backed service →
//! (later, in another process) recall through a fresh service → fine-tune
//! → serve. This mirrors how the paper's prototype would serve many users
//! sharing pre-trained models per algorithm (§V) — the second service
//! stands in for a fresh process reusing a colleague's checkpoint.
//!
//! ```sh
//! cargo run --release --example pretrain_finetune
//! ```

use bellamy::prelude::*;

fn main() {
    let data = generate_c3o(&GeneratorConfig::seeded(42));
    let target = data.contexts_for(Algorithm::PageRank)[2];
    let history: Vec<TrainingSample> = data
        .runs_for_algorithm_excluding(Algorithm::PageRank, Some(target.id))
        .iter()
        .map(|r| TrainingSample::from_run(&data.contexts[r.context_id], r))
        .collect();

    // --- Hyperparameter search over the Table I grid ------------------------
    println!("searching 4 configurations from the Table I grid (quick budget) ...");
    let (model, report) = search_pretrain(
        &BellamyConfig::default(),
        &history,
        &SearchSpace::default(),
        4,   // paper: 12 trials; reduced for example runtime
        120, // paper: 2500 epochs
        21,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    )
    .expect("the Table I grid has finite trials");
    for (i, t) in report.trials.iter().enumerate() {
        let marker = if i == report.best_index {
            " <- best"
        } else {
            ""
        };
        println!(
            "  trial {}: dropout {:>4.0}% lr {:<7} wd {:<7} -> val MAE {:>7.1}s{}",
            i + 1,
            t.config.dropout * 100.0,
            format!("{:e}", t.config.lr),
            format!("{:e}", t.config.weight_decay),
            t.val_mae_s,
            marker
        );
    }

    // --- Publish the winner through a disk-backed service --------------------
    let dir = std::env::temp_dir().join("bellamy-example-hub");
    let key = ModelKey::new("pagerank", "runtime", &BellamyConfig::default());
    {
        let service = Service::builder()
            .hub_dir(&dir)
            .build()
            .expect("create disk-backed service");
        let published = service
            .publish(&key, &model)
            .expect("publish search winner");
        println!(
            "\npublished {} into {} (weights fingerprint {:016x})",
            key,
            dir.display(),
            published.state().params_fingerprint()
        );
    } // service dropped: everything in memory is gone, only the disk registry remains

    // --- Later, in another process: recall through a fresh service ----------
    let service = Service::builder()
        .hub_dir(&dir)
        .build()
        .expect("open disk-backed service");
    let recalled = service.client(&key).expect("recall from disk");
    println!(
        "recalled {key} from disk (disk recalls: {}, pretrains: {})",
        service.stats().disk_recalls,
        service.stats().pretrains
    );

    let observed: Vec<TrainingSample> = data
        .runs_for_context(target.id)
        .iter()
        .filter(|r| r.repeat == 0 && [4, 10].contains(&r.scale_out))
        .map(|r| TrainingSample::from_run(target, r))
        .collect();
    let start = std::time::Instant::now();
    let tuned = service
        .finetuned_client_with(
            &key,
            "pagerank-target",
            &observed,
            &FinetuneConfig::default(),
            ReuseStrategy::PartialUnfreeze,
            5,
        )
        .expect("fine-tune the recalled model");
    println!(
        "fine-tuned the recalled model on {} points in {:.1}ms (parent: {})",
        observed.len(),
        start.elapsed().as_secs_f64() * 1e3,
        tuned.state().parent_key().unwrap_or("-")
    );

    // --- Predict and compare to the held-out truth --------------------------
    let props = context_properties(target);
    println!(
        "\n{:<10} {:>12} {:>12}",
        "scale-out", "predicted", "actual(mean)"
    );
    for x in [2u32, 6, 8, 12] {
        let actual: Vec<f64> = data
            .runs_for_context(target.id)
            .iter()
            .filter(|r| r.scale_out == x)
            .map(|r| r.runtime_s)
            .collect();
        println!(
            "{:<10} {:>10.1}s {:>10.1}s",
            x,
            tuned.predict(x as f64, &props).expect("service is live"),
            actual.iter().sum::<f64>() / actual.len() as f64
        );
    }

    // The recalled client still serves the shared parent; tuned is its
    // descendant.
    let direct = recalled.predict(8.0, &props).expect("service is live");
    println!("\ndirect application of the recalled parent at x=8: {direct:.1}s");

    std::fs::remove_dir_all(&dir).ok();
}
