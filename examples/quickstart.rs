//! Quickstart: the Bellamy reuse workflow end to end, through the serving
//! front door.
//!
//! 1. Load (here: generate) historical execution data.
//! 2. Build a [`Service`] and ask it for a **client** of the general model
//!    for an algorithm (`client_or_pretrain`: trained once per key, shared
//!    thereafter).
//! 3. **Fine-tune** through the service on a handful of runs from a *new*
//!    context (the descendant records its parent for provenance).
//! 4. **Serve**: predict runtimes at unseen scale-outs through the client —
//!    single queries are micro-batched across all concurrent callers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bellamy::prelude::*;

fn main() {
    // --- 1. Historical data -------------------------------------------------
    let data = generate_c3o(&GeneratorConfig::seeded(42));
    println!(
        "historical traces: {} contexts, {} runs across {:?}",
        data.contexts.len(),
        data.runs.len(),
        data.algorithms()
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
    );

    // The "new" context we pretend to encounter for the first time.
    let target = data.contexts_for(Algorithm::KMeans)[3];
    println!(
        "\ntarget context: {} | {} MB | {} | {}",
        target.node_type.name,
        target.dataset_size_mb,
        target.dataset_characteristics,
        target.job_parameters
    );

    // --- 2. A serving client for the general K-Means model ------------------
    let service = Service::builder().build().expect("in-memory service");
    let key = ModelKey::new("kmeans", "runtime", &BellamyConfig::default());
    let start = std::time::Instant::now();
    let general = service
        .client_or_pretrain(
            &key,
            &PretrainConfig {
                epochs: 300,
                ..PretrainConfig::default()
            },
            7,
            || {
                data.runs_for_algorithm_excluding(Algorithm::KMeans, Some(target.id))
                    .iter()
                    .map(|r| TrainingSample::from_run(&data.contexts[r.context_id], r))
                    .collect()
            },
        )
        .expect("pre-training converges");
    println!(
        "\nclient_or_pretrain({key}): trained + registered in {:.1}s",
        start.elapsed().as_secs_f64()
    );

    // A second request is a pure recall — same shared snapshot, no training.
    let start = std::time::Instant::now();
    let recalled = service.client(&key).expect("recall");
    println!(
        "client({key}): recalled in {:.1}us (same model: {})",
        start.elapsed().as_secs_f64() * 1e6,
        std::sync::Arc::ptr_eq(general.state(), recalled.state()),
    );

    // --- 3. Fine-tune on three observed runs of the new context ------------
    let observed: Vec<TrainingSample> = data
        .runs_for_context(target.id)
        .iter()
        .filter(|r| [2, 6, 10].contains(&r.scale_out) && r.repeat == 0)
        .map(|r| TrainingSample::from_run(target, r))
        .collect();
    let start = std::time::Instant::now();
    let tuned = service
        .finetuned_client_with(
            &key,
            "kmeans-new-context",
            &observed,
            &FinetuneConfig::default(),
            ReuseStrategy::PartialUnfreeze,
            7,
        )
        .expect("fine-tuning succeeds");
    println!(
        "finetuned_client: {} points in {:.1}ms (parent: {})",
        observed.len(),
        start.elapsed().as_secs_f64() * 1e3,
        tuned.state().parent_key().unwrap_or("-")
    );

    // --- 4. Serve: predict at unseen scale-outs -----------------------------
    let props = context_properties(target);
    println!(
        "\n{:<10} {:>12} {:>12} {:>8}",
        "scale-out", "predicted", "actual", "error"
    );
    for x in [4u32, 8, 12] {
        let actual: Vec<f64> = data
            .runs_for_context(target.id)
            .iter()
            .filter(|r| r.scale_out == x)
            .map(|r| r.runtime_s)
            .collect();
        let actual_mean = actual.iter().sum::<f64>() / actual.len() as f64;
        // Single queries route through the cross-caller micro-batcher.
        let predicted = tuned.predict(x as f64, &props).expect("service is live");
        println!(
            "{:<10} {:>10.1}s {:>10.1}s {:>7.1}%",
            x,
            predicted,
            actual_mean,
            100.0 * (predicted - actual_mean).abs() / actual_mean
        );
    }
    let stats = tuned.batcher_stats();
    println!(
        "\n(served {} queries in {} micro-batches)",
        stats.queries, stats.batches
    );
}
