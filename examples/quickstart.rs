//! Quickstart: the Bellamy workflow end to end.
//!
//! 1. Load (here: generate) historical execution data.
//! 2. Pre-train a general model for an algorithm across contexts.
//! 3. Fine-tune it on a handful of runs from a *new* context.
//! 4. Predict runtimes at unseen scale-outs and compare against actuals.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bellamy::prelude::*;

fn main() {
    // --- 1. Historical data -------------------------------------------------
    let data = generate_c3o(&GeneratorConfig::seeded(42));
    println!(
        "historical traces: {} contexts, {} runs across {:?}",
        data.contexts.len(),
        data.runs.len(),
        data.algorithms()
            .iter()
            .map(|a| a.name())
            .collect::<Vec<_>>()
    );

    // The "new" context we pretend to encounter for the first time.
    let target = data.contexts_for(Algorithm::KMeans)[3];
    println!(
        "\ntarget context: {} | {} MB | {} | {}",
        target.node_type.name,
        target.dataset_size_mb,
        target.dataset_characteristics,
        target.job_parameters
    );

    // --- 2. Pre-train across all *other* K-Means contexts ------------------
    let history: Vec<TrainingSample> = data
        .runs_for_algorithm_excluding(Algorithm::KMeans, Some(target.id))
        .iter()
        .map(|r| TrainingSample::from_run(&data.contexts[r.context_id], r))
        .collect();
    let mut model = Bellamy::new(BellamyConfig::default(), 7);
    let report = pretrain(
        &mut model,
        &history,
        &PretrainConfig {
            epochs: 300,
            ..PretrainConfig::default()
        },
        7,
    );
    println!(
        "\npre-trained on {} runs from {} other contexts in {:.1}s (train MAE {:.1}s)",
        report.n_samples,
        data.contexts_for(Algorithm::KMeans).len() - 1,
        report.elapsed_s,
        report.train_mae_s
    );

    // --- 3. Fine-tune on three observed runs of the new context ------------
    let observed: Vec<TrainingSample> = data
        .runs_for_context(target.id)
        .iter()
        .filter(|r| [2, 6, 10].contains(&r.scale_out) && r.repeat == 0)
        .map(|r| TrainingSample::from_run(target, r))
        .collect();
    let ft_report = fine_tune(
        &mut model,
        &observed,
        &FinetuneConfig::default(),
        ReuseStrategy::PartialUnfreeze,
        7,
    );
    println!(
        "fine-tuned on {} points in {:.1}ms / {} epochs (best MAE {:.1}s)",
        observed.len(),
        ft_report.elapsed_s * 1e3,
        ft_report.epochs,
        ft_report.best_mae_s
    );

    // --- 4. Predict at unseen scale-outs ------------------------------------
    let props = context_properties(target);
    println!(
        "\n{:<10} {:>12} {:>12} {:>8}",
        "scale-out", "predicted", "actual", "error"
    );
    for x in [4u32, 8, 12] {
        let actual: Vec<f64> = data
            .runs_for_context(target.id)
            .iter()
            .filter(|r| r.scale_out == x)
            .map(|r| r.runtime_s)
            .collect();
        let actual_mean = actual.iter().sum::<f64>() / actual.len() as f64;
        let predicted = model.predict(x as f64, &props);
        println!(
            "{:<10} {:>10.1}s {:>10.1}s {:>7.1}%",
            x,
            predicted,
            actual_mean,
            100.0 * (predicted - actual_mean).abs() / actual_mean
        );
    }
}
