//! Choosing cluster resources from runtime predictions — the use case that
//! motivates the paper (§I): meet a runtime target without over-provisioning,
//! or minimize cost subject to a deadline. The whole decision runs through
//! a [`ModelClient`]: one batched sweep per candidate curve, and the
//! allocation helpers directly on the client.
//!
//! ```sh
//! cargo run --release --example resource_allocation
//! ```

use bellamy::prelude::*;

fn main() {
    let data = generate_c3o(&GeneratorConfig::seeded(42));
    let target = data.contexts_for(Algorithm::Sgd)[5];
    println!(
        "job: SGD on {} | {} MB | {}",
        target.node_type.name, target.dataset_size_mb, target.job_parameters
    );

    // Pre-train across contexts through the service, fine-tune on three
    // observations.
    let service = Service::builder().build().expect("in-memory service");
    let key = ModelKey::new("sgd", "allocation-runtime", &BellamyConfig::default());
    service
        .client_or_pretrain(
            &key,
            &PretrainConfig {
                epochs: 300,
                ..Default::default()
            },
            11,
            || {
                data.runs_for_algorithm_excluding(Algorithm::Sgd, Some(target.id))
                    .iter()
                    .map(|r| TrainingSample::from_run(&data.contexts[r.context_id], r))
                    .collect()
            },
        )
        .expect("pre-training converges");
    let observed: Vec<TrainingSample> = data
        .runs_for_context(target.id)
        .iter()
        .filter(|r| [2, 6, 12].contains(&r.scale_out) && r.repeat == 0)
        .map(|r| TrainingSample::from_run(target, r))
        .collect();
    let client = service
        .finetuned_client_with(
            &key,
            "sgd-target",
            &observed,
            &FinetuneConfig::default(),
            ReuseStrategy::PartialUnfreeze,
            11,
        )
        .expect("fine-tuning succeeds");

    let props = context_properties(target);
    // The predicted runtime curve over the candidate scale-outs — one
    // batched sweep through the client.
    let xs: Vec<f64> = (2..=12).step_by(2).map(|x| x as f64).collect();
    let curve = client.predict_sweep(&props, &xs);
    println!("\npredicted runtime curve:");
    for (&x, &t) in xs.iter().zip(&curve) {
        let bar_len = (t / 8.0) as usize;
        println!(
            "  {:>2} machines | {:<60} {:>7.1}s",
            x,
            "#".repeat(bar_len.min(60)),
            t
        );
    }

    // Scenario A: meet a runtime target with as few machines as possible.
    let at_12 = client.predict(12.0, &props).expect("service is live");
    let target_s = at_12 * 1.15;
    match client.recommend_scale_out(&props, target_s, 2, 12) {
        Some(rec) => println!(
            "\nA) smallest allocation meeting {:.0}s: {} machines (predicted {:.1}s)",
            target_s, rec.scale_out, rec.predicted_runtime_s
        ),
        None => println!("\nA) no allocation in 2..=12 meets {target_s:.0}s"),
    }

    // Scenario B: cheapest allocation under a deadline, at $0.40/machine-hour.
    let deadline = target_s * 1.5;
    match client.cheapest_scale_out(&props, 0.40, Some(deadline), 2, 12) {
        Some(rec) => println!(
            "B) cheapest under a {:.0}s deadline: {} machines, predicted {:.1}s, ${:.4}",
            deadline, rec.scale_out, rec.predicted_runtime_s, rec.predicted_cost
        ),
        None => println!("B) no allocation meets the {deadline:.0}s deadline"),
    }

    // Compare against the ground truth the generator used.
    let truth = ground_truth_profile(target);
    println!(
        "\nsanity: ground-truth optimal scale-out in 2..=12 is {} ({:.1}s noise-free)",
        truth.optimal_scale_out(2, 12),
        truth.runtime(truth.optimal_scale_out(2, 12) as f64)
    );
}
