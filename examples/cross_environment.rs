//! Reusing a model across environments (§IV-C2): pre-train in the public
//! cloud (C3O traces), migrate to a private cluster (Bell traces), and
//! compare the four reuse strategies against training from scratch — all
//! through one [`Service`]: the pre-trained model is recalled once, every
//! strategy derives its own fine-tuned client, and even the locally
//! trained baseline serves through the same front door.
//!
//! ```sh
//! cargo run --release --example cross_environment
//! ```

use bellamy::prelude::*;

fn main() {
    let gen = GeneratorConfig::seeded(42);
    let cloud = generate_c3o(&gen);
    let cluster = generate_bell(&gen);

    // A serving client for the general SGD model over every cloud execution.
    let service = Service::builder().build().expect("in-memory service");
    let key = ModelKey::new("sgd", "cloud-runtime", &BellamyConfig::default());
    let start = std::time::Instant::now();
    let base = service
        .client_or_pretrain(
            &key,
            &PretrainConfig {
                epochs: 300,
                ..Default::default()
            },
            3,
            || {
                cloud
                    .runs_for_algorithm_excluding(Algorithm::Sgd, None)
                    .iter()
                    .map(|r| TrainingSample::from_run(&cloud.contexts[r.context_id], r))
                    .collect()
            },
        )
        .expect("pre-training converges");
    println!(
        "pre-trained SGD model registered as {key} ({:.1}s)",
        start.elapsed().as_secs_f64()
    );

    // The private-cluster context: different hardware, software, and scale.
    let target = cluster.contexts_for(Algorithm::Sgd)[0];
    println!(
        "migrating to: {} | {} MB | {} (scale-outs 4..60)\n",
        target.node_type.name, target.dataset_size_mb, target.job_parameters
    );
    let observed: Vec<TrainingSample> = cluster
        .runs_for_context(target.id)
        .iter()
        .filter(|r| [8, 24, 48].contains(&r.scale_out) && r.repeat == 0)
        .map(|r| TrainingSample::from_run(target, r))
        .collect();

    // Held-out evaluation points: one run per remaining scale-out.
    let eval_points: Vec<(f64, f64)> = cluster
        .runs_for_context(target.id)
        .iter()
        .filter(|r| ![8, 24, 48].contains(&r.scale_out) && r.repeat == 1)
        .map(|r| (r.scale_out as f64, r.runtime_s))
        .collect();
    let props = context_properties(target);
    let mae = |client: &ModelClient| -> f64 {
        // One batched sweep over the held-out grid instead of per-point
        // queries.
        let xs: Vec<f64> = eval_points.iter().map(|&(x, _)| x).collect();
        let preds = client.predict_sweep(&props, &xs);
        eval_points
            .iter()
            .zip(&preds)
            .map(|(&(_, y), &p)| (p - y).abs())
            .sum::<f64>()
            / eval_points.len() as f64
    };

    println!(
        "{:<28} {:>10} {:>13} {:>24}",
        "variant", "MAE [s]", "fit time [ms]", "provenance"
    );
    for strategy in ReuseStrategy::ALL {
        let start = std::time::Instant::now();
        let tuned = service
            .finetuned_client_with(
                &key,
                "bell-sgd-cluster",
                &observed,
                &FinetuneConfig::default(),
                strategy,
                9,
            )
            .expect("fine-tuning succeeds");
        println!(
            "{:<28} {:>10.1} {:>13.1} {:>24}",
            strategy.name(),
            mae(&tuned),
            start.elapsed().as_secs_f64() * 1e3,
            tuned.state().parent_key().unwrap_or("-")
        );
    }
    println!(
        "(service now caches {} fine-tuned descendants of {})",
        service.hub().finetuned_len(),
        key
    );

    // Baseline: a local model trained from scratch on the same points,
    // served through the same front door via client_for_state.
    let mut local = Bellamy::new(BellamyConfig::default(), 3);
    let start = std::time::Instant::now();
    fit_local(&mut local, &observed, &FinetuneConfig::default(), 9);
    let local_client = service.client_for_state(local.snapshot().expect("fitted"));
    println!(
        "{:<28} {:>10.1} {:>13.1} {:>24}",
        "local (from scratch)",
        mae(&local_client),
        start.elapsed().as_secs_f64() * 1e3,
        "-"
    );
    let _ = base;

    println!(
        "\nExpectation (paper §IV-C2): under this extreme context shift the reuse\n\
         variants are not necessarily more accurate than local, but they converge in\n\
         fewer epochs — reuse trades a possible accuracy cost for training speed."
    );
}
