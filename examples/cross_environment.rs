//! Reusing a model across environments (§IV-C2): pre-train in the public
//! cloud (C3O traces), migrate to a private cluster (Bell traces), and
//! compare the four reuse strategies against training from scratch.
//!
//! ```sh
//! cargo run --release --example cross_environment
//! ```

use bellamy::prelude::*;

fn main() {
    let gen = GeneratorConfig::seeded(42);
    let cloud = generate_c3o(&gen);
    let cluster = generate_bell(&gen);

    // Pre-train a general SGD model on every cloud execution.
    let history: Vec<TrainingSample> = cloud
        .runs_for_algorithm_excluding(Algorithm::Sgd, None)
        .iter()
        .map(|r| TrainingSample::from_run(&cloud.contexts[r.context_id], r))
        .collect();
    let mut base = Bellamy::new(BellamyConfig::default(), 3);
    let report = pretrain(
        &mut base,
        &history,
        &PretrainConfig {
            epochs: 300,
            ..Default::default()
        },
        3,
    );
    println!(
        "pre-trained SGD model on {} public-cloud runs ({:.1}s)",
        report.n_samples, report.elapsed_s
    );

    // The private-cluster context: different hardware, software, and scale.
    let target = cluster.contexts_for(Algorithm::Sgd)[0];
    println!(
        "migrating to: {} | {} MB | {} (scale-outs 4..60)\n",
        target.node_type.name, target.dataset_size_mb, target.job_parameters
    );
    let observed: Vec<TrainingSample> = cluster
        .runs_for_context(target.id)
        .iter()
        .filter(|r| [8, 24, 48].contains(&r.scale_out) && r.repeat == 0)
        .map(|r| TrainingSample::from_run(target, r))
        .collect();

    // Held-out evaluation points: one run per remaining scale-out.
    let eval_points: Vec<(f64, f64)> = cluster
        .runs_for_context(target.id)
        .iter()
        .filter(|r| ![8, 24, 48].contains(&r.scale_out) && r.repeat == 1)
        .map(|r| (r.scale_out as f64, r.runtime_s))
        .collect();
    let props = context_properties(target);
    let mae = |model: &Bellamy| -> f64 {
        eval_points
            .iter()
            .map(|&(x, y)| (model.predict(x, &props) - y).abs())
            .sum::<f64>()
            / eval_points.len() as f64
    };

    println!(
        "{:<28} {:>10} {:>10} {:>13}",
        "variant", "MAE [s]", "epochs", "fit time [ms]"
    );
    for strategy in ReuseStrategy::ALL {
        let mut model = base.clone_model();
        let r = fine_tune(
            &mut model,
            &observed,
            &FinetuneConfig::default(),
            strategy,
            9,
        );
        println!(
            "{:<28} {:>10.1} {:>10} {:>13.1}",
            strategy.name(),
            mae(&model),
            r.epochs,
            r.elapsed_s * 1e3
        );
    }

    // Baseline: a local model trained from scratch on the same points.
    let mut local = Bellamy::new(BellamyConfig::default(), 3);
    let r = fit_local(&mut local, &observed, &FinetuneConfig::default(), 9);
    println!(
        "{:<28} {:>10.1} {:>10} {:>13.1}",
        "local (from scratch)",
        mae(&local),
        r.epochs,
        r.elapsed_s * 1e3
    );

    println!(
        "\nExpectation (paper §IV-C2): under this extreme context shift the reuse\n\
         variants are not necessarily more accurate than local, but they converge in\n\
         fewer epochs — reuse trades a possible accuracy cost for training speed."
    );
}
