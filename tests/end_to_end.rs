//! Cross-crate integration tests: the full Bellamy workflow from trace
//! generation through pre-training, persistence, fine-tuning, prediction and
//! resource allocation.

use bellamy::prelude::*;

fn history_for(data: &Dataset, algorithm: Algorithm, exclude: usize) -> Vec<TrainingSample> {
    data.runs_for_algorithm_excluding(algorithm, Some(exclude))
        .iter()
        .map(|r| TrainingSample::from_run(&data.contexts[r.context_id], r))
        .collect()
}

fn context_samples(data: &Dataset, ctx: &JobContext) -> Vec<TrainingSample> {
    data.runs_for_context(ctx.id)
        .iter()
        .map(|r| TrainingSample::from_run(ctx, r))
        .collect()
}

#[test]
fn pretrain_save_load_finetune_predict() {
    let data = generate_c3o(&GeneratorConfig::seeded(9));
    let target = data.contexts_for(Algorithm::Sgd)[1];

    // Pre-train.
    let history = history_for(&data, Algorithm::Sgd, target.id);
    let mut model = Bellamy::new(BellamyConfig::default(), 3);
    let pre = pretrain(
        &mut model,
        &history,
        &PretrainConfig {
            epochs: 80,
            ..Default::default()
        },
        3,
    );
    assert!(pre.final_loss.is_finite());

    // Persist and restore through the binary checkpoint.
    let dir = std::env::temp_dir().join("bellamy-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sgd-e2e.blmy");
    model.save(&path).unwrap();
    let mut restored = Bellamy::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // The restored model predicts identically.
    let props = context_properties(target);
    assert_eq!(
        model.predict(6.0, &props).unwrap(),
        restored.predict(6.0, &props).unwrap()
    );

    // Fine-tune the restored model on three points of the unseen context.
    let all = context_samples(&data, target);
    let few: Vec<TrainingSample> = all.iter().step_by(10).cloned().collect();
    let report = fine_tune(
        &mut restored,
        &few,
        &FinetuneConfig {
            max_epochs: 250,
            patience: 150,
            ..Default::default()
        },
        ReuseStrategy::PartialUnfreeze,
        5,
    );
    assert!(report.epochs > 0);

    // Prediction quality on all runs of the context: within 30% MRE on
    // average (few-shot adaptation on noisy data).
    let mre = all
        .iter()
        .map(|s| {
            (restored.predict(s.scale_out, &s.props).unwrap() - s.runtime_s).abs() / s.runtime_s
        })
        .sum::<f64>()
        / all.len() as f64;
    assert!(mre < 0.3, "few-shot MRE too high: {mre}");
}

#[test]
fn pretrained_beats_untrained_on_new_context() {
    // The flagship reuse test runs the *real* workflow: the general model
    // is recalled from a ModelHub (pre-trained exactly once, shared
    // thereafter) and the context adaptation goes through fine_tuned_for.
    let data = generate_c3o(&GeneratorConfig::seeded(11));
    let target = data.contexts_for(Algorithm::KMeans)[2];
    let history = history_for(&data, Algorithm::KMeans, target.id);

    let hub = ModelHub::in_memory();
    let key = ModelKey::new("kmeans", "e2e-runtime", &BellamyConfig::default());
    // 300 epochs: the 120-epoch budget this test shipped with was tuned to
    // a specific RNG stream; direct application needs the loss to flatten.
    let pretrained = hub
        .recall_or_pretrain(
            &key,
            &PretrainConfig {
                epochs: 300,
                ..Default::default()
            },
            1,
            || history.clone(),
        )
        .expect("pre-training converges");

    // Direct application (0 fine-tuning points) on the unseen context, via
    // the shared snapshot.
    let all = context_samples(&data, target);
    let props = context_properties(target);
    let mre_pretrained = all
        .iter()
        .map(|s| (pretrained.predict(s.scale_out, &props) - s.runtime_s).abs() / s.runtime_s)
        .sum::<f64>()
        / all.len() as f64;
    // Direct cross-context application must be usable (paper: extrapolation
    // "already manageable in many cases without any fine-tuning at all").
    assert!(
        mre_pretrained < 0.6,
        "direct application too weak: MRE {mre_pretrained}"
    );

    // Asking again must recall, never re-train — same shared Arc, and the
    // training corpus is not even materialized.
    let recalled = hub
        .recall_or_pretrain(&key, &PretrainConfig::default(), 1, || {
            panic!("a recall must not re-pretrain")
        })
        .expect("recall");
    assert!(std::sync::Arc::ptr_eq(&pretrained, &recalled));
    assert_eq!(hub.stats().pretrains, 1);

    // Few-shot adaptation through the hub: the descendant must carry its
    // parent's provenance and match the hand-wired fine-tune bit-for-bit.
    let few: Vec<TrainingSample> = all.iter().step_by(10).cloned().collect();
    let ft = FinetuneConfig {
        max_epochs: 250,
        patience: 150,
        ..Default::default()
    };
    let tuned = hub
        .fine_tuned_for(
            &key,
            "kmeans-ctx2",
            &few,
            &ft,
            ReuseStrategy::PartialUnfreeze,
            5,
        )
        .expect("fine-tuning succeeds");
    assert_eq!(tuned.parent_key(), Some(key.id()));

    let mut hand = Bellamy::from_state(&pretrained);
    fine_tune(&mut hand, &few, &ft, ReuseStrategy::PartialUnfreeze, 5);
    for s in all.iter().step_by(7) {
        let a = tuned.predict(s.scale_out, &s.props);
        let b = hand.predict(s.scale_out, &s.props).unwrap();
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "hub fine-tune must equal the hand-wired path at x = {}",
            s.scale_out
        );
    }
}

#[test]
fn baselines_and_bellamy_agree_on_clean_curves() {
    // On a noise-free Ernest-shaped curve every method should interpolate
    // well; this guards against systematic bias in any of the pipelines.
    let gen = GeneratorConfig {
        noise_sigma: 1e-9,
        straggler_prob: 0.0,
        ..GeneratorConfig::seeded(4)
    };
    let data = generate_c3o(&gen);
    let target = data.contexts_for(Algorithm::Grep)[0];
    let all = context_samples(&data, target);

    // Training points at x = 2, 6, 12; test at x = 8.
    let train: Vec<TrainingSample> = all
        .iter()
        .filter(|s| [2.0, 6.0, 12.0].contains(&s.scale_out))
        .cloned()
        .collect();
    let test: Vec<&TrainingSample> = all.iter().filter(|s| s.scale_out == 8.0).collect();
    let expected = test[0].runtime_s;

    let points: Vec<(f64, f64)> = train.iter().map(|s| (s.scale_out, s.runtime_s)).collect();
    let ernest = ErnestModel::fit(&points).unwrap();
    let bell = BellModel::fit(&points).unwrap();
    assert!((ernest.predict(8.0) - expected).abs() / expected < 0.25);
    assert!((bell.predict(8.0) - expected).abs() / expected < 0.25);

    let mut local = Bellamy::new(BellamyConfig::default(), 2);
    fit_local(
        &mut local,
        &train,
        &FinetuneConfig {
            max_epochs: 400,
            patience: 250,
            ..Default::default()
        },
        2,
    );
    let pred = local.predict(8.0, &context_properties(target)).unwrap();
    assert!(
        (pred - expected).abs() / expected < 0.3,
        "local Bellamy off: {pred} vs {expected}"
    );
}

#[test]
fn allocation_uses_model_predictions() {
    let data = generate_c3o(&GeneratorConfig::seeded(21));
    let target = data.contexts_for(Algorithm::Grep)[4];
    let all = context_samples(&data, target);
    let mut model = Bellamy::new(BellamyConfig::default(), 6);
    fit_local(
        &mut model,
        &all,
        &FinetuneConfig {
            max_epochs: 300,
            patience: 200,
            ..Default::default()
        },
        6,
    );
    let props = context_properties(target);
    let state = model.snapshot().expect("fitted");
    let predict = |x: u32| state.predict(x as f64, &props);

    // Grep scales down smoothly: a generous target is met by some x, and the
    // recommended x is minimal.
    let generous = predict(2).max(predict(12)) * 1.01;
    let rec = min_scale_out_meeting(predict, generous, 2, 12).expect("target achievable");
    for x in 2..rec.scale_out {
        assert!(predict(x) > generous, "{x} would already meet the target");
    }

    // Cost optimization picks a valid candidate and accounts price.
    let cheap = cheapest_scale_out(predict, 1.0, None, 2, 12).expect("non-empty range");
    assert!(cheap.predicted_cost > 0.0);
    assert!((2..=12).contains(&cheap.scale_out));
}

#[test]
fn csv_round_trip_preserves_model_inputs() {
    let gen = GeneratorConfig::seeded(33);
    let data = generate_c3o(&gen);
    let text = bellamy::data::csv::to_csv(&data);
    let back = bellamy::data::csv::from_csv(&text).unwrap();

    // Training on the round-tripped dataset gives identical samples.
    let a = TrainingSample::from_run(&data.contexts[0], &data.runs[0]);
    let b = TrainingSample::from_run(&back.contexts[0], &back.runs[0]);
    assert_eq!(a.scale_out, b.scale_out);
    assert_eq!(a.props, b.props);
    assert!((a.runtime_s - b.runtime_s).abs() < 1e-5);
}

#[test]
fn reuse_strategies_are_all_viable_cross_environment() {
    let gen = GeneratorConfig::seeded(8);
    let c3o = generate_c3o(&gen);
    let bell = generate_bell(&gen);

    let history: Vec<TrainingSample> = c3o
        .runs_for_algorithm_excluding(Algorithm::Grep, None)
        .iter()
        .map(|r| TrainingSample::from_run(&c3o.contexts[r.context_id], r))
        .collect();
    let mut base = Bellamy::new(BellamyConfig::default(), 13);
    pretrain(
        &mut base,
        &history,
        &PretrainConfig {
            epochs: 60,
            ..Default::default()
        },
        13,
    );

    let target = bell.contexts_for(Algorithm::Grep)[0];
    let few: Vec<TrainingSample> = bell
        .runs_for_context(target.id)
        .iter()
        .filter(|r| r.repeat == 0 && [8, 28, 52].contains(&r.scale_out))
        .map(|r| TrainingSample::from_run(target, r))
        .collect();
    assert_eq!(few.len(), 3);

    let props = context_properties(target);
    for strategy in ReuseStrategy::ALL {
        let mut model = base.clone_model();
        let report = fine_tune(
            &mut model,
            &few,
            &FinetuneConfig {
                max_epochs: 200,
                patience: 120,
                ..Default::default()
            },
            strategy,
            3,
        );
        assert!(report.best_mae_s.is_finite(), "{}", strategy.name());
        let p = model.predict(40.0, &props).unwrap();
        assert!(
            p.is_finite() && p > 0.0,
            "{}: prediction {p}",
            strategy.name()
        );
    }
}
