//! Property-based integration tests over the full pipeline: arbitrary (but
//! plausible) contexts and observations must never break encoding, training,
//! or prediction invariants.

use bellamy::prelude::*;
use proptest::prelude::*;

/// Strategy: an arbitrary plausible job context.
fn arb_context() -> impl Strategy<Value = JobContext> {
    let node_names = prop_oneof![
        Just("m4.xlarge"),
        Just("m4.2xlarge"),
        Just("c4.xlarge"),
        Just("c4.2xlarge"),
        Just("r4.xlarge"),
        Just("r4.2xlarge"),
    ];
    (
        node_names,
        1024u64..100_000,
        "[a-z]{3,12}(-[a-z]{3,10})?",
        prop_oneof![
            (1u32..200).prop_map(|it| format!("--iterations {it}")),
            (1u32..64).prop_map(|k| format!("--k {k} --iterations 20")),
            "[a-z]{2,10}".prop_map(|p| format!("--pattern {p}")),
        ],
        prop_oneof![
            Just(Algorithm::Grep),
            Just(Algorithm::Sort),
            Just(Algorithm::Sgd),
            Just(Algorithm::KMeans),
            Just(Algorithm::PageRank),
        ],
    )
        .prop_map(|(node, size, chars, params, algorithm)| JobContext {
            id: 0,
            environment: Environment::C3oPublicCloud,
            algorithm,
            node_type: NodeType::by_name(node).expect("catalog name"),
            dataset_size_mb: size,
            dataset_characteristics: chars,
            job_parameters: params,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ground_truth_is_positive_and_finite(ctx in arb_context(), x in 1u32..100) {
        let profile = ground_truth_profile(&ctx);
        let t = profile.runtime(x as f64);
        prop_assert!(t.is_finite());
        prop_assert!(t > 0.0);
    }

    #[test]
    fn encoding_any_context_is_stable(ctx in arb_context()) {
        let props = context_properties(&ctx);
        prop_assert_eq!(props.essential.len(), 4);
        prop_assert_eq!(props.optional.len(), 3);
        // Encoding the same context twice is identical (determinism).
        let again = context_properties(&ctx);
        prop_assert_eq!(props, again);
    }

    #[test]
    fn local_fit_and_predict_never_panic(ctx in arb_context(), seed in 0u64..1000) {
        // Three synthetic observations from the ground-truth curve.
        let profile = ground_truth_profile(&ctx);
        let samples: Vec<TrainingSample> = [2.0f64, 6.0, 12.0]
            .iter()
            .map(|&x| TrainingSample {
                scale_out: x,
                runtime_s: profile.runtime(x),
                props: context_properties(&ctx),
            })
            .collect();
        let mut model = Bellamy::new(BellamyConfig::default(), seed);
        fit_local(
            &mut model,
            &samples,
            &FinetuneConfig { max_epochs: 20, patience: 15, ..Default::default() },
            seed,
        );
        let p = model.predict(8.0, &context_properties(&ctx)).expect("fitted");
        prop_assert!(p.is_finite());
    }

    #[test]
    fn checkpoint_round_trip_any_model(seed in 0u64..10_000) {
        let model = Bellamy::new(BellamyConfig::default(), seed);
        let ck = model.to_checkpoint();
        let restored = Bellamy::from_checkpoint(&ck).expect("round trip");
        let ck2 = restored.to_checkpoint();
        prop_assert_eq!(ck.to_bytes(), ck2.to_bytes(), "checkpoint must be canonical");
    }

    #[test]
    fn nnls_baseline_handles_any_curve(ctx in arb_context()) {
        let profile = ground_truth_profile(&ctx);
        let points: Vec<(f64, f64)> = (1..=6)
            .map(|i| {
                let x = (2 * i) as f64;
                (x, profile.runtime(x))
            })
            .collect();
        let model = ErnestModel::fit(&points).expect("fit succeeds");
        for x in [3.0, 5.0, 9.0, 20.0] {
            let p = model.predict(x);
            prop_assert!(p.is_finite());
            prop_assert!(p >= 0.0, "NNLS predictions are non-negative combos");
        }
    }
}
